"""Property-based fuzzing of the full simulation pipeline.

Hypothesis generates small random multi-threaded programs (compute,
loads, stores, locks, barriers) and checks system-level invariants:
the simulation terminates, bookkeeping balances, accounting components
stay physical, and everything is deterministic.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.accounting.accountant import CycleAccountant
from repro.config import MachineConfig
from repro.core.stack import build_stack
from repro.osmodel.thread import FINISHED
from repro.sim.engine import Simulation
from repro.workloads.program import (
    BarrierWait,
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
)

# One action of a thread's loop body.
_ACTION = st.sampled_from(["compute", "load", "store", "cs", "barrier"])


@st.composite
def programs(draw):
    """A small random program: every thread runs the same action list
    (so barriers always have all parties) with thread-local addresses."""
    n_threads = draw(st.integers(min_value=1, max_value=4))
    actions = draw(st.lists(_ACTION, min_size=1, max_size=12))
    compute_n = draw(st.integers(min_value=1, max_value=400))
    n_lines = draw(st.integers(min_value=1, max_value=64))

    def body(tid: int):
        barrier_id = 0
        for index, action in enumerate(actions):
            if action == "compute":
                yield Compute(compute_n)
            elif action == "load":
                addr = 0x100_0000 + (tid << 22) + (index % n_lines) * 64
                yield Load(addr)
            elif action == "store":
                addr = 0x100_0000 + (tid << 22) + (index % n_lines) * 64
                yield Store(addr)
            elif action == "cs":
                yield LockAcquire(0)
                yield Compute(50)
                yield Store(0x9000_0000)
                yield LockRelease(0)
            elif action == "barrier":
                yield BarrierWait(barrier_id)
                barrier_id += 1

    def factory() -> Program:
        return Program("fuzz", [body(t) for t in range(n_threads)])

    return factory, n_threads


@settings(max_examples=40, deadline=None)
@given(programs())
def test_simulation_terminates_and_balances(case):
    factory, n_threads = case
    program = factory()
    machine = MachineConfig(n_cores=n_threads)
    accountant = CycleAccountant(machine)
    result = Simulation(machine, program, accountant).run(max_cycles=10**8)

    # Termination and basic bookkeeping.
    assert all(t.state == FINISHED for t in result.threads)
    assert result.total_cycles == max(t.end_time for t in result.threads)
    assert result.total_cycles >= 0

    # Locks released, barriers complete.
    for lock in result.sync.locks.values():
        assert lock.holder is None
        assert not lock.waiters
    for barrier in result.sync.barriers.values():
        assert barrier.arrived == 0
        assert not barrier.waiters

    # Accounting invariants.
    report = accountant.report(result)
    stack = build_stack("fuzz", report)
    stack.validate_consistency()
    for comp in report.threads:
        assert comp.total_overhead >= 0
        assert comp.total_overhead <= report.tp_cycles * 1.0001
        assert comp.positive_llc >= 0

    # Core busy time never exceeds wall time.
    for stats in result.chip.stats:
        assert stats.busy_cycles <= result.total_cycles


@settings(max_examples=15, deadline=None)
@given(programs())
def test_simulation_deterministic(case):
    """Two simulations of the same program are cycle-identical."""
    factory, n_threads = case
    machine = MachineConfig(n_cores=n_threads)
    result_a = Simulation(machine, factory()).run(max_cycles=10**8)
    result_b = Simulation(machine, factory()).run(max_cycles=10**8)
    assert result_a.total_cycles == result_b.total_cycles
    assert result_a.thread_end_times == result_b.thread_end_times
    assert result_a.total_instrs == result_b.total_instrs


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=50, max_value=2000),
)
def test_oversubscription_terminates(n_cores, threads_per_core, work):
    """Any thread/core ratio with barriers still terminates."""
    n_threads = n_cores * threads_per_core

    def body(tid: int):
        yield Compute(work)
        yield BarrierWait(0)
        yield Compute(work)

    machine = MachineConfig(n_cores=n_cores)
    program = Program("over", [body(t) for t in range(n_threads)])
    result = Simulation(machine, program).run(max_cycles=10**8)
    assert all(t.state == FINISHED for t in result.threads)
