"""The hardened batch runner: isolation, retries, journal, resume."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (
    BatchRunner,
    CELL_FAILED,
    CELL_OK,
    CELL_RESUMED,
    RunPolicy,
)
from repro.robustness.faults import FaultInjector, make_fault
from repro.robustness.journal import JOURNAL_VERSION, SweepJournal


@pytest.fixture
def cells(tiny_spec):
    return [(tiny_spec, 2), (tiny_spec, 4)]


class TestPolicy:
    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            RunPolicy(on_error="panic")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RunPolicy(max_retries=-1)


class TestSweepIsolation:
    def test_one_bad_cell_does_not_kill_the_sweep(self, cells, tmp_path):
        """The acceptance scenario: inject a deadlock into one cell,
        every other cell completes, and the failure report names the
        failed cell with its engine-state snapshot."""
        journal_path = tmp_path / "sweep.json"
        runner = BatchRunner(
            journal=SweepJournal(str(journal_path)),
            fault_plan={"tiny:2": make_fault("deadlock")},
        )
        report = runner.run_sweep(cells)
        assert [o.key for o in report.failures] == ["tiny:2"]
        assert [o.key for o in report.completed] == ["tiny:4"]
        failed = report.failures[0]
        assert failed.error_type == "DeadlockError"
        assert failed.snapshot is not None
        assert failed.snapshot["threads"]

        text = report.render_failure_report()
        assert "tiny:2" in text
        assert "DeadlockError" in text
        assert "engine state" in text

        data = json.loads(journal_path.read_text())
        assert data["version"] == JOURNAL_VERSION
        assert data["cells"]["tiny:2"]["status"] == "failed"
        assert data["cells"]["tiny:2"]["snapshot"]["threads"]
        assert data["cells"]["tiny:4"]["status"] == "ok"

    def test_resume_reruns_only_the_failed_cell(self, cells, tmp_path):
        journal_path = tmp_path / "sweep.json"
        runner = BatchRunner(
            journal=SweepJournal(str(journal_path)),
            fault_plan={"tiny:2": make_fault("deadlock")},
        )
        assert not runner.run_sweep(cells).ok

        # second run: fault gone, resume from the journal
        resumed = BatchRunner(journal=SweepJournal(str(journal_path)))
        report = resumed.run_sweep(cells, resume=True)
        by_key = {o.key: o.status for o in report.outcomes}
        assert by_key == {"tiny:2": CELL_OK, "tiny:4": CELL_RESUMED}
        assert report.ok

        data = json.loads(journal_path.read_text())
        assert all(c["status"] == "ok" for c in data["cells"].values())

    def test_clean_sweep_report(self, cells):
        report = BatchRunner().run_sweep(cells)
        assert report.ok
        assert report.render_failure_report() == ""
        assert len(report.completed) == 2

    def test_truncated_cell_still_counts_as_ok(self, tiny_spec, tmp_path):
        journal_path = tmp_path / "sweep.json"
        runner = BatchRunner(
            policy=RunPolicy(max_cycles=2_000),
            journal=SweepJournal(str(journal_path)),
        )
        report = runner.run_sweep([(tiny_spec, 2)])
        assert report.ok
        outcome = report.completed[0]
        assert outcome.result.mt_result.truncated
        data = json.loads(journal_path.read_text())
        assert data["cells"]["tiny:2"]["truncated"] is True


class TestRetries:
    def test_retry_recovers_from_transient_fault(self, tiny_spec):
        """A fault that strikes only the first attempt: retry mode must
        converge on the second attempt."""
        injector = FaultInjector(0)
        calls = {"n": 0}

        def transient(program, machine):
            calls["n"] += 1
            if calls["n"] == 1:
                return injector.drop_lock_releases(program), machine
            return program, machine

        sleeps = []
        policy = RunPolicy(
            on_error="retry", max_retries=2, backoff_s=0.25,
            backoff_jitter=False,
        )
        runner = BatchRunner(
            policy=policy,
            fault_plan={"tiny:2": transient},
            sleep=sleeps.append,
        )
        outcome = runner.run_cell(tiny_spec, 2)
        assert outcome.status == CELL_OK
        assert outcome.attempts == 2
        assert sleeps == [0.25]

    def test_retry_exhaustion_records_failure_with_backoff(self, tiny_spec):
        sleeps = []
        runner = BatchRunner(
            policy=RunPolicy(
                on_error="retry", max_retries=2,
                backoff_s=0.5, backoff_factor=3.0, backoff_jitter=False,
            ),
            fault_plan={"tiny:2": make_fault("deadlock")},
            sleep=sleeps.append,
        )
        outcome = runner.run_cell(tiny_spec, 2)
        assert outcome.status == CELL_FAILED
        assert outcome.attempts == 3
        assert sleeps == [0.5, 1.5]  # exponential backoff (no jitter)

    def test_jittered_backoff_is_deterministic_and_capped(self, tiny_spec):
        """Default policy: full jitter in [0, capped delay], seeded from
        (cell key, attempt) — reproducible everywhere, bounded above."""
        sleeps = []
        runner = BatchRunner(
            policy=RunPolicy(
                on_error="retry", max_retries=2,
                backoff_s=0.5, backoff_factor=3.0,
            ),
            fault_plan={"tiny:2": make_fault("deadlock")},
            sleep=sleeps.append,
        )
        outcome = runner.run_cell(tiny_spec, 2)
        assert outcome.status == CELL_FAILED
        policy = runner.policy
        assert sleeps == [
            policy.backoff_delay(2, "tiny:2"),
            policy.backoff_delay(3, "tiny:2"),
        ]
        assert all(0.0 <= s for s in sleeps)
        assert sleeps[0] <= 0.5 and sleeps[1] <= 1.5

    def test_backoff_cap(self):
        policy = RunPolicy(
            on_error="retry", backoff_s=1.0, backoff_factor=10.0,
            backoff_max_s=5.0, backoff_jitter=False,
        )
        assert policy.backoff_delay(2, "x") == 1.0
        assert policy.backoff_delay(3, "x") == 5.0   # capped from 10
        assert policy.backoff_delay(9, "x") == 5.0   # stays capped
        uncapped = RunPolicy(
            on_error="retry", backoff_s=1.0, backoff_factor=10.0,
            backoff_max_s=None, backoff_jitter=False,
        )
        assert uncapped.backoff_delay(3, "x") == 10.0

    def test_backoff_validation(self):
        import pytest

        with pytest.raises(ValueError, match="backoff_max_s"):
            RunPolicy(backoff_max_s=-1.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RunPolicy(backoff_factor=0.5)

    def test_skip_mode_never_retries(self, tiny_spec):
        sleeps = []
        runner = BatchRunner(
            policy=RunPolicy(on_error="skip", max_retries=5, backoff_s=1.0),
            fault_plan={"tiny:2": make_fault("deadlock")},
            sleep=sleeps.append,
        )
        outcome = runner.run_cell(tiny_spec, 2)
        assert outcome.status == CELL_FAILED
        assert outcome.attempts == 1
        assert sleeps == []


class TestAbortMode:
    def test_abort_raises_experiment_error(self, tiny_spec):
        runner = BatchRunner(
            policy=RunPolicy(on_error="abort"),
            fault_plan={"tiny:2": make_fault("deadlock")},
        )
        with pytest.raises(ExperimentError) as err:
            runner.run_cell(tiny_spec, 2)
        assert err.value.benchmark == "tiny"
        assert err.value.n_threads == 2
        assert err.value.__cause__ is not None
        assert "tiny:2" in str(err.value)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.json")
        journal = SweepJournal(path)
        journal.record_ok("a", 4, attempts=1, total_cycles=123)
        journal.record_failure(
            "b", 8, attempts=3, error="boom", error_type="DeadlockError",
            snapshot={"cycle": 7},
        )
        reloaded = SweepJournal(path)
        assert reloaded.completed("a", 4)
        assert not reloaded.completed("b", 8)
        assert reloaded.failed_keys == ["b:8"]
        assert reloaded.entry("b", 8)["snapshot"] == {"cycle": 7}
        assert reloaded.status("c", 2) is None

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text(json.dumps({"version": 99, "cells": {}}))
        with pytest.raises(ValueError):
            SweepJournal(str(path))

    def test_in_memory_journal_never_touches_disk(self):
        journal = SweepJournal(None)
        journal.record_ok("a", 2, attempts=1, total_cycles=10)
        assert journal.completed("a", 2)
        journal.save()  # no-op, no path
