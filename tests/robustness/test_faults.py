"""The seeded fault injector: determinism and end-to-end pathologies."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.errors import ConfigError, DeadlockError, TraceParseError
from repro.osmodel.thread import FINISHED
from repro.robustness.faults import FAULT_KINDS, FaultInjector, make_fault
from repro.sim.engine import simulate
from repro.workloads.program import (
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
    TAG_LOCK_RELEASE,
)
from repro.workloads.tracefile import dump_trace, parse_trace

from tests.conftest import lock_step_program

CLEAN_TRACE = dump_trace([
    [Compute(50), Load(0x1000), Store(0x2000)] * 4,
    [Compute(70), Load(0x3000), Store(0x4000)] * 4,
])


def tags(program: Program) -> list[list[int]]:
    """Materialize per-thread op tags (consumes the program)."""
    return [[op.TAG for op in body] for body in program.thread_bodies]


class TestCorruptTrace:
    def test_deterministic(self):
        a = FaultInjector(7).corrupt_trace(CLEAN_TRACE, n_corruptions=3)
        b = FaultInjector(7).corrupt_trace(CLEAN_TRACE, n_corruptions=3)
        assert a == b
        assert a != CLEAN_TRACE

    def test_every_seed_breaks_the_parser(self):
        """On a C/L/S trace every corruption style is a parse error —
        corruption must fail loudly, never mis-parse silently."""
        for seed in range(12):
            corrupted = FaultInjector(seed).corrupt_trace(
                CLEAN_TRACE, n_corruptions=2
            )
            assert corrupted != CLEAN_TRACE
            with pytest.raises(TraceParseError) as err:
                parse_trace(corrupted, name=f"fuzz-{seed}")
            assert err.value.source == f"fuzz-{seed}"
            assert err.value.line_no is not None

    def test_comments_and_blanks_untouched(self):
        text = "# only a comment\n\n# another\n"
        assert FaultInjector(0).corrupt_trace(text) == text

    def test_corruption_count_clamped(self):
        text = "T0 C 10\n"
        corrupted = FaultInjector(1).corrupt_trace(text, n_corruptions=99)
        with pytest.raises(TraceParseError):
            parse_trace(corrupted)


class TestProgramFaults:
    def test_drop_lock_releases_removes_all(self):
        program = Program("p", [
            iter([LockAcquire(0), Compute(10), LockRelease(0), Compute(5)]),
        ])
        dropped = FaultInjector(0).drop_lock_releases(program)
        body = tags(dropped)[0]
        assert TAG_LOCK_RELEASE not in body
        assert len(body) == 3  # everything else survives

    def test_drop_fraction_zero_is_identity(self):
        program = Program("p", [
            iter([LockAcquire(0), LockRelease(0)]),
        ])
        kept = FaultInjector(0).drop_lock_releases(program, fraction=0.0)
        assert tags(kept)[0].count(TAG_LOCK_RELEASE) == 1

    def test_dropped_releases_deadlock_the_engine(self, machine4):
        faulted = FaultInjector(0).drop_lock_releases(lock_step_program(4))
        with pytest.raises(DeadlockError) as err:
            simulate(machine4, faulted)
        snapshot = err.value.snapshot
        assert snapshot is not None
        held = [s for s in snapshot.locks if s.holder_tid is not None]
        assert held, "post-mortem must show the stuck lock"
        assert any(s.waiter_tids for s in snapshot.locks)

    def test_skewed_barriers_still_finish_but_slower(self, machine4):
        baseline = simulate(machine4, lock_step_program(4)).total_cycles
        skewed = FaultInjector(0).skew_barrier_arrivals(
            lock_step_program(4), extra_instrs=50_000, fraction=1.0
        )
        result = simulate(machine4, skewed)
        assert all(t.state == FINISHED for t in result.threads)
        assert result.total_cycles > baseline

    def test_spin_forever_overrides_budget(self):
        program = lock_step_program(2)
        forever = FaultInjector(0).spin_forever(program)
        assert forever.spin_threshold_override == 1 << 60
        assert forever.n_threads == 2

    def test_spike_memory_latency(self, machine4):
        spiked = FaultInjector(0).spike_memory_latency(machine4, factor=8)
        assert spiked.dram.t_cas == machine4.dram.t_cas * 8
        assert spiked.dram.t_rcd == machine4.dram.t_rcd * 8
        assert spiked.dram.t_rp == machine4.dram.t_rp * 8
        assert spiked.dram.bus_cycles == machine4.dram.bus_cycles * 8
        assert spiked.n_cores == machine4.n_cores
        # the original machine is untouched
        assert machine4.dram.t_cas != spiked.dram.t_cas

    def test_transforms_are_seed_deterministic(self):
        def fresh():
            return Program("p", [iter(
                [LockAcquire(0), Compute(10), LockRelease(0)] * 10
            ) for __ in range(2)])

        a = tags(FaultInjector(5).drop_lock_releases(fresh(), fraction=0.5))
        b = tags(FaultInjector(5).drop_lock_releases(fresh(), fraction=0.5))
        assert a == b


class TestMakeFault:
    def test_all_kinds_build(self):
        for kind in FAULT_KINDS:
            assert callable(make_fault(kind))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_fault("gremlins")

    def test_deadlock_fault_leaves_machine_alone(self, machine4):
        program, machine = make_fault("deadlock")(
            lock_step_program(2), machine4
        )
        assert machine is machine4
        assert TAG_LOCK_RELEASE not in tags(program)[0]

    def test_mem_spike_fault_leaves_program_alone(self, machine4):
        original = lock_step_program(2)
        program, machine = make_fault("mem-spike")(original, machine4)
        assert program is original
        assert machine.dram.t_cas > machine4.dram.t_cas

    def test_livelock_fault_composes(self, machine4):
        program, __ = make_fault("livelock")(lock_step_program(2), machine4)
        assert program.spin_threshold_override == 1 << 60
