"""Robustness subsystem tests."""
