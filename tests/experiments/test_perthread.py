"""Per-thread validation harness."""

from __future__ import annotations

import pytest

from repro.experiments.perthread import (
    PerThreadValidation,
    ThreadValidation,
    render_per_thread,
    validate_per_thread,
)
from repro.workloads.suite import by_name

SCALE = 0.12


@pytest.fixture(scope="module")
def validation():
    return validate_per_thread(by_name("dedup_small"), 4, scale=SCALE)


class TestValidation:
    def test_one_row_per_thread(self, validation):
        assert [t.thread_id for t in validation.threads] == [0, 1, 2, 3]

    def test_isolated_times_positive(self, validation):
        for t in validation.threads:
            assert t.isolated_cycles > 0
            assert t.estimated_cycles > 0

    def test_per_thread_errors_bounded(self, validation):
        assert validation.mean_abs_error < 0.15

    def test_aggregate_at_most_mean(self, validation):
        """Signed aggregate error can only cancel, never exceed the
        mean absolute per-thread error."""
        assert abs(validation.aggregate_error) <= (
            validation.mean_abs_error + 1e-9
        )

    def test_estimates_track_work_division(self, validation):
        """Threads do ~equal shares: isolated times within ~15%."""
        times = [t.isolated_cycles for t in validation.threads]
        assert max(times) < 1.15 * min(times)

    def test_render(self, validation):
        text = render_per_thread(validation)
        assert "thread" in text
        assert "aggregate" in text


class TestArithmetic:
    def test_error_normalized_by_tp(self):
        row = ThreadValidation(
            thread_id=0, estimated_cycles=1100, isolated_cycles=1000,
            tp_cycles=2000,
        )
        assert row.error == pytest.approx(0.05)

    def test_empty(self):
        v = PerThreadValidation(threads=[])
        assert v.mean_abs_error == 0.0
        assert v.aggregate_error == 0.0
