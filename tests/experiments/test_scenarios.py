"""Figure drivers at tiny scale: caching, sweeps, structure."""

from __future__ import annotations

import pytest

from repro.config import MB, MachineConfig
from repro.experiments.scenarios import (
    ExperimentCache,
    classification_tree,
    ferret_core_sweep,
    interference_breakdown,
    llc_size_sweep,
    speedup_curves,
    stack_series,
    validation_sweep,
)
from repro.workloads.suite import by_name

SCALE = 0.05


@pytest.fixture(scope="module")
def cache() -> ExperimentCache:
    return ExperimentCache(scale=SCALE)


class TestCache:
    def test_run_memoized(self, cache):
        spec = by_name("blackscholes_small")
        first = cache.run(spec, 2)
        second = cache.run(spec, 2)
        assert first is second

    def test_reference_memoized(self, cache):
        spec = by_name("blackscholes_small")
        machine = MachineConfig(n_cores=2)
        assert cache.reference_cycles(spec, machine) == cache.reference_cycles(
            spec, machine
        )

    def test_distinct_llc_sizes_not_conflated(self, cache):
        spec = by_name("blackscholes_small")
        base = MachineConfig(n_cores=2)
        big = base.with_llc_size(4 * MB)
        a = cache.run(spec, 2, base)
        b = cache.run(spec, 2, big)
        assert a is not b


class TestFigureDrivers:
    def test_speedup_curves_structure(self, cache):
        curves = speedup_curves(
            cache, benchmarks=("blackscholes_small",), thread_counts=(2, 4)
        )
        curve = curves["blackscholes_small"]
        assert curve[1] == 1.0
        assert set(curve) == {1, 2, 4}
        assert curve[4] > curve[2] > 0.8

    def test_validation_sweep(self, cache):
        specs = (by_name("blackscholes_small"), by_name("dedup_small"))
        summary = validation_sweep(cache, specs, thread_counts=(2, 4))
        assert len(summary.rows) == 4
        assert set(summary.error_by_threads) == {2, 4}
        assert all(0 <= err < 0.5 for err in summary.error_by_threads.values())
        assert "dedup_small" in summary.overheads

    def test_stack_series(self, cache):
        stacks = stack_series(cache, "dedup_small", thread_counts=(2, 4))
        assert [s.n_threads for s in stacks] == [2, 4]
        for stack in stacks:
            stack.validate_consistency()

    def test_classification_tree(self, cache):
        specs = (by_name("blackscholes_small"), by_name("dedup_small"))
        tree = classification_tree(cache, specs, n_threads=4)
        assert len(tree.leaves) == 2

    def test_interference_breakdown(self, cache):
        rows = interference_breakdown(
            cache, benchmarks=("cholesky",), n_threads=4
        )
        assert len(rows) == 1
        assert rows[0].name == "cholesky"

    def test_llc_size_sweep(self, cache):
        points = llc_size_sweep(
            cache, "cholesky", llc_sizes=(2 * MB, 4 * MB), n_threads=4
        )
        assert [p.llc_mb for p in points] == [2.0, 4.0]

    def test_ferret_core_sweep(self, cache):
        matched, oversub = ferret_core_sweep(
            cache, core_counts=(2, 4), oversubscribed_threads=8
        )
        assert [p.n_cores for p in matched] == [2, 4]
        assert all(p.n_threads == 8 for p in oversub)
        assert all(p.speedup > 0 for p in matched + oversub)
