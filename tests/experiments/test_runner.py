"""Experiment runner: the full measurement protocol end to end."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.experiments.runner import (
    run_accounted,
    run_experiment,
    run_reference,
)
from repro.workloads.spec import build_program


@pytest.fixture
def machine() -> MachineConfig:
    return MachineConfig(n_cores=4)


class TestProtocol:
    def test_full_experiment(self, machine, tiny_spec):
        result = run_experiment(
            "tiny", machine,
            build_program(tiny_spec, 4), build_program(tiny_spec, 1),
        )
        stack = result.stack
        assert stack.actual_speedup is not None
        assert 0.5 < stack.actual_speedup <= 4.5
        assert stack.n_threads == 4
        stack.validate_consistency()

    def test_estimate_tracks_actual(self, machine, tiny_spec):
        """The headline claim at small scale: |error| stays bounded."""
        result = run_experiment(
            "tiny", machine,
            build_program(tiny_spec, 4), build_program(tiny_spec, 1),
        )
        assert abs(result.stack.estimation_error) < 0.20

    def test_experiment_without_reference(self, machine, tiny_spec):
        result = run_experiment(
            "tiny", machine, build_program(tiny_spec, 4)
        )
        assert result.stack.actual_speedup is None
        assert result.st_result is None
        assert result.parallelization_overhead is None

    def test_reference_runs_on_one_core(self, machine, tiny_spec):
        result = run_reference(machine, build_program(tiny_spec, 1))
        assert result.machine.n_cores == 1

    def test_reference_rejects_multithreaded(self, machine, tiny_spec):
        with pytest.raises(ValueError):
            run_reference(machine, build_program(tiny_spec, 2))

    def test_accounted_returns_report(self, machine, tiny_spec):
        sim, report = run_accounted(machine, build_program(tiny_spec, 4))
        assert report.tp_cycles == sim.total_cycles
        assert report.n_threads == 4


class TestOverheadMeasurement:
    def test_parallelization_overhead_positive(self, machine):
        from dataclasses import replace

        from tests.conftest import BenchmarkSpec

        spec = BenchmarkSpec(
            name="oh", total_kinstrs=60, mem_per_kinstr=20,
            private_ws_kb=16, par_overhead=0.2,
        )
        result = run_experiment(
            "oh", machine, build_program(spec, 4), build_program(spec, 1)
        )
        assert result.parallelization_overhead == pytest.approx(0.2, abs=0.05)

    def test_spin_instructions_excluded(self, machine, tiny_spec):
        """Overhead subtracts spin-loop instructions (Section 6), so a
        spin-heavy run does not masquerade as parallelization overhead."""
        result = run_experiment(
            "tiny", machine,
            build_program(tiny_spec, 4), build_program(tiny_spec, 1),
        )
        assert result.parallelization_overhead < 0.15
