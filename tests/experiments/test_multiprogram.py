"""Multi-program per-thread cycle accounting (the [7] baseline)."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.experiments.multiprogram import (
    render_multiprogram,
    run_multiprogram,
)
from repro.workloads.suite import by_name

SCALE = 0.1


@pytest.fixture(scope="module")
def result():
    specs = [by_name("facesim_small"), by_name("blackscholes_small")]
    return run_multiprogram(specs, scale=SCALE)


class TestMultiProgram:
    def test_one_entry_per_program(self, result):
        assert [p.name for p in result.programs] == [
            "facesim_small", "blackscholes_small",
        ]
        assert [p.core_id for p in result.programs] == [0, 1]

    def test_corun_never_faster_than_isolated(self, result):
        for p in result.programs:
            assert p.slowdown >= 0.97  # allow simulation noise

    def test_estimate_between_bounds(self, result):
        for p in result.programs:
            assert 0 < p.estimated_isolated_cycles <= p.co_run_cycles

    def test_estimation_accuracy(self, result):
        assert result.mean_abs_error < 0.12

    def test_interference_nonnegative(self, result):
        for p in result.programs:
            assert p.accounted_interference >= 0

    def test_compute_bound_program_unaffected(self, result):
        blackscholes = result.programs[1]
        assert blackscholes.slowdown < 1.1
        assert abs(blackscholes.error) < 0.05

    def test_program_count_must_match_cores(self):
        with pytest.raises(ValueError):
            run_multiprogram(
                [by_name("radix")], MachineConfig(n_cores=2), scale=SCALE
            )

    def test_locks_do_not_couple_programs(self):
        """Two copies of a lock-using benchmark must not contend with
        each other across program boundaries."""
        specs = [by_name("dedup_small"), by_name("dedup_small")]
        result = run_multiprogram(specs, scale=SCALE)
        for p in result.programs:
            # single-threaded dedup has no contention; co-run copies
            # must not introduce any (slowdown only from memory system)
            assert p.slowdown < 1.35

    def test_render(self, result):
        text = render_multiprogram(result)
        assert "facesim_small" in text
        assert "mean |error|" in text
