"""Cross-module integration tests: whole-system invariants.

These exercise the full pipeline — workload synthesis, simulation,
accounting, stack building — on miniature configurations, checking
physical invariants that no single module can verify alone.
"""

from __future__ import annotations

import pytest

from repro import (
    CycleAccountant,
    MachineConfig,
    Simulation,
    build_program,
    build_stack,
    by_name,
    run_experiment,
)
from repro.workloads.spec import BenchmarkSpec

SPEC = BenchmarkSpec(
    name="mini", total_kinstrs=80, mem_per_kinstr=80, private_ws_kb=16,
    n_locks=1, cs_per_kinstr=0.2, cs_len_instrs=300, n_phases=2,
    imbalance=0.3, par_overhead=0.05,
)


def run(n_threads: int, spec: BenchmarkSpec = SPEC):
    machine = MachineConfig(n_cores=n_threads)
    accountant = CycleAccountant(machine)
    program = build_program(spec, n_threads)
    result = Simulation(machine, program, accountant).run()
    report = accountant.report(result)
    return result, report


class TestPhysicalInvariants:
    def test_per_thread_overhead_bounded_by_wall_time(self):
        __, report = run(4)
        for comp in report.threads:
            assert 0 <= comp.total_overhead <= report.tp_cycles * 1.0001

    def test_components_non_negative(self):
        __, report = run(4)
        for comp in report.threads:
            assert comp.negative_llc >= 0
            assert comp.negative_memory >= 0
            assert comp.positive_llc >= 0
            assert comp.spinning >= 0
            assert comp.yielding >= 0
            assert comp.imbalance >= 0

    def test_imbalance_matches_end_times(self):
        result, report = run(4)
        for thread in result.threads:
            expected = result.total_cycles - thread.end_time
            assert report.threads[thread.tid].imbalance == expected

    def test_stack_segments_sum_to_n(self):
        __, report = run(4)
        stack = build_stack("mini", report)
        stack.validate_consistency()

    def test_accounted_yield_equals_oracle(self):
        result, report = run(4)
        for thread in result.threads:
            assert report.threads[thread.tid].yielding == pytest.approx(
                thread.gt_yield_cycles
            )

    def test_accounted_spin_close_to_oracle(self):
        """The spin estimate (hardware detector + truncation hook) must
        land in the same ballpark as the engine's ground truth."""
        result, report = run(8)
        oracle = sum(t.gt_spin_cycles for t in result.threads)
        measured = sum(c.spinning for c in report.threads)
        if oracle > 2000:
            assert measured == pytest.approx(oracle, rel=0.6)

    def test_busy_cycles_bounded(self):
        result, __ = run(4)
        for core_stats in result.chip.stats:
            assert core_stats.busy_cycles <= result.total_cycles


class TestScalingSanity:
    def test_speedup_increases_with_threads(self):
        machine1 = MachineConfig(n_cores=1)
        ts = Simulation(machine1, build_program(SPEC, 1)).run().total_cycles
        speedups = []
        for n in (2, 4, 8):
            result, __ = run(n)
            speedups.append(ts / result.total_cycles)
        assert speedups[0] < speedups[1] < speedups[2] + 0.5
        assert speedups[0] > 1.0

    def test_estimate_tracks_actual_across_thread_counts(self):
        machine1 = MachineConfig(n_cores=1)
        ts = Simulation(machine1, build_program(SPEC, 1)).run().total_cycles
        for n in (2, 4, 8):
            result, report = run(n)
            actual = ts / result.total_cycles
            error = abs(report.estimated_speedup - actual) / n
            assert error < 0.2, f"error {error:.2%} at {n} threads"


class TestDeterminismEndToEnd:
    def test_identical_runs_identical_reports(self):
        __, a = run(4)
        __, b = run(4)
        assert a.tp_cycles == b.tp_cycles
        for x, y in zip(a.threads, b.threads):
            assert x.negative_llc == y.negative_llc
            assert x.spinning == y.spinning
            assert x.yielding == y.yielding
            assert x.imbalance == y.imbalance


class TestSuiteBenchmarkSmoke:
    @pytest.mark.parametrize(
        "name", ["blackscholes_small", "cholesky", "ferret_small", "needle"]
    )
    def test_suite_benchmark_runs_scaled(self, name):
        spec = by_name(name).scaled(0.05)
        machine = MachineConfig(n_cores=4)
        result = run_experiment(
            name, machine, build_program(spec, 4), build_program(spec, 1)
        )
        assert result.stack.actual_speedup > 0.3
        result.stack.validate_consistency()


class TestLiDetectorEndToEnd:
    def test_li_mode_detects_spin(self):
        from dataclasses import replace

        from repro.config import AccountingConfig

        spec = BenchmarkSpec(
            name="spin-heavy", total_kinstrs=60, mem_per_kinstr=20,
            private_ws_kb=16, n_locks=1, cs_per_kinstr=2.0,
            cs_len_instrs=150, par_overhead=0.0, spin_threshold=10_000,
        )
        machine = replace(
            MachineConfig(n_cores=4),
            accounting=AccountingConfig(spin_detector="li"),
        )
        accountant = CycleAccountant(machine)
        result = Simulation(machine, build_program(spec, 4), accountant).run()
        report = accountant.report(result)
        oracle = sum(t.gt_spin_cycles for t in result.threads)
        measured = sum(c.spinning for c in report.threads)
        assert oracle > 0
        assert measured > 0.2 * oracle
