"""Session↔checkpoint ergonomics: field-naming mismatches, clean resume."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigError
from repro.session import Session


def canon(state: dict) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


@pytest.fixture()
def saved(tmp_path):
    session = Session.from_config("cholesky", 4, scale=0.05).step(2_000)
    path = tmp_path / "mid.ckpt"
    session.save(path)
    return session, path


def test_resume_is_byte_identical(saved):
    session, path = saved
    resumed = Session.from_checkpoint(path)
    session.run()
    resumed.run()
    assert canon(resumed.snapshot()) == canon(session.snapshot())
    assert resumed.stack() == session.stack()


def test_mismatch_raises_config_error_naming_fields(saved):
    _, path = saved
    base = ExperimentConfig()
    experiment = dataclasses.replace(
        base,
        machine=dataclasses.replace(
            base.machine,
            llc=dataclasses.replace(
                base.machine.llc,
                size_bytes=base.machine.llc.size_bytes * 2,
            ),
        ),
        workload=dataclasses.replace(base.workload, scale=0.05),
    )
    with pytest.raises(ConfigError) as exc:
        Session.from_checkpoint(path, experiment=experiment)
    err = exc.value
    # names the mismatched leaf, not just the opaque hash
    assert "machine.llc.size_bytes" in str(err)
    assert err.field == "machine.llc.size_bytes"
    assert "checkpoint" in str(err) and "config" in str(err)


def test_scale_mismatch_named(saved):
    _, path = saved
    base = ExperimentConfig()
    experiment = dataclasses.replace(
        base, workload=dataclasses.replace(base.workload, scale=0.25),
    )
    with pytest.raises(ConfigError, match="scale"):
        Session.from_checkpoint(path, experiment=experiment)


def test_matching_experiment_resumes(saved):
    session, path = saved
    base = ExperimentConfig()
    experiment = dataclasses.replace(
        base, workload=dataclasses.replace(base.workload, scale=0.05),
    )
    resumed = Session.from_checkpoint(path, experiment=experiment)
    session.run()
    resumed.run()
    assert canon(resumed.snapshot()) == canon(session.snapshot())


def test_experiment_limits_override_saved(tmp_path):
    """A config with explicit watchdog limits continues a checkpointed
    run under the *new* budget (the raised-budget workflow)."""
    session = Session.from_config(
        "cholesky", 4, scale=0.05, max_cycles=3_000,
    ).step(1_000)
    path = tmp_path / "budget.ckpt"
    session.save(path)

    base = ExperimentConfig()
    experiment = dataclasses.replace(
        base,
        workload=dataclasses.replace(base.workload, scale=0.05),
        run=dataclasses.replace(base.run, max_cycles=3_000),
    )
    raised = dataclasses.replace(
        experiment,
        run=dataclasses.replace(experiment.run, max_cycles=50_000_000),
    )
    # limits are run parameters, not identity: no mismatch, new budget
    resumed = Session.from_checkpoint(path, experiment=raised)
    assert resumed.kernel.max_cycles == 50_000_000
    resumed_default = Session.from_checkpoint(path, experiment=experiment)
    assert resumed_default.kernel.max_cycles == 3_000


def test_checkpoint_resume_crosses_backends(saved):
    numpy = pytest.importorskip("numpy")  # noqa: F841
    session, path = saved
    resumed = Session.from_checkpoint(path, engine="vectorized")
    assert resumed.kernel.engine == "vectorized"
    session.run()
    resumed.run()
    assert canon(resumed.snapshot()) == canon(session.snapshot())
