"""SimulationKernel: the batch path re-hosted, byte-identically.

The golden differential for the ISSUE-10 refactor: the batch protocol
(`run_accounted` / `run_experiment` / the batch runner) now drives its
engines through :class:`repro.session.SimulationKernel`, and these
tests prove the re-hosting is invisible — the six pinned golden stacks
reproduce exactly, both through the (kernel-hosted) batch API and
through a *stepped* interactive :class:`~repro.session.Session`, and a
journal written from stepped-session results is byte-identical to the
batch runner's.  (The serial-vs-``--jobs 2`` journal differential runs
against the same kernel-hosted path in
``tests/parallel/test_differential.py``.)
"""

from __future__ import annotations

import json

import pytest

from repro.config import MachineConfig
from repro.experiments.runner import BatchRunner, RunPolicy, run_accounted
from repro.robustness.journal import SweepJournal
from repro.session import Session, SimulationKernel
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name

from tests.golden.test_golden_stacks import (
    GOLDEN_CELLS,
    MAX_CYCLES,
    SCALE,
    _fixture_path,
    diff_stacks,
    stack_to_dict,
)


def _golden_session(name: str, n_threads: int) -> Session:
    return Session.from_config(
        name, n_threads, scale=SCALE, max_cycles=MAX_CYCLES,
    )


@pytest.mark.parametrize(
    "name,n_threads", GOLDEN_CELLS,
    ids=[f"{n}:{t}" for n, t in GOLDEN_CELLS],
)
def test_stepped_session_matches_golden_stack(name, n_threads):
    """A Session advanced in uneven steps lands on the pinned stack."""
    session = _golden_session(name, n_threads)
    # deliberately ragged partition; the tail runs to completion
    session.step(10_000).step(1).step(250_000)
    stack = session.stack()
    expected = json.loads(_fixture_path(name, n_threads).read_text())
    diff = diff_stacks(expected, stack_to_dict(stack))
    assert not diff, (
        f"stepped session {name}:{n_threads} diverged from golden "
        "fixture:\n  " + "\n  ".join(diff)
    )


def test_kernel_batch_equals_run_accounted():
    """One-shot kernel lifecycle == the public batch function."""
    spec = by_name("cholesky")
    machine = MachineConfig(n_cores=4)
    program = build_program(spec, 4, scale=0.05)
    batch_result, batch_report = run_accounted(machine, program)

    kernel = SimulationKernel(
        machine, build_program(spec, 4, scale=0.05),
    )
    result = kernel.finish()
    assert result.total_cycles == batch_result.total_cycles
    assert kernel.report() == batch_report
    # finishing twice is idempotent
    assert kernel.finish() is result
    assert kernel.step(1_000) is result


def test_kernel_step_partition_equals_one_shot():
    spec = by_name("cholesky")
    machine = MachineConfig(n_cores=4)

    one_shot = SimulationKernel(machine, build_program(spec, 4, scale=0.05))
    one_shot.finish()

    stepped = SimulationKernel(machine, build_program(spec, 4, scale=0.05))
    while not stepped.done:
        stepped.step(500)
    assert stepped.snapshot() == one_shot.snapshot()
    assert stepped.report() == one_shot.report()


def test_kernel_peek_report_is_pure():
    spec = by_name("cholesky")
    machine = MachineConfig(n_cores=4)
    kernel = SimulationKernel(machine, build_program(spec, 4, scale=0.05))
    kernel.step(2_000)
    before = kernel.snapshot()
    partial = kernel.peek_report()
    assert partial is not None
    assert partial.truncated
    assert kernel.snapshot() == before
    kernel.finish()
    assert kernel.peek_report() == kernel.report()


def test_unaccounted_kernel_has_no_report():
    from repro.errors import SimulationError

    spec = by_name("cholesky")
    kernel = SimulationKernel(
        MachineConfig(n_cores=1), build_program(spec, 1, scale=0.05),
        accounted=False,
    )
    assert kernel.peek_report() is None
    kernel.finish()
    with pytest.raises(SimulationError):
        kernel.report()


def test_session_journal_matches_batch_journal(tmp_path):
    """Journals recorded from stepped-session results are byte-identical
    to the batch runner's — the refactor moved the run host, not one
    bit of the observable output."""
    cells = [(by_name("cholesky"), 2), (by_name("blackscholes_small"), 2)]
    policy = RunPolicy(max_cycles=MAX_CYCLES)

    batch_path = tmp_path / "batch.json"
    runner = BatchRunner(
        policy=policy, scale=SCALE, journal=SweepJournal(str(batch_path)),
    )
    report = runner.run_sweep(cells)
    assert report.ok

    session_path = tmp_path / "session.json"
    journal = SweepJournal(str(session_path))
    for spec, n_threads in cells:
        session = _golden_session(spec.full_name, n_threads)
        session.step(7_000)
        while not session.done:
            session.step(300_000)
        result = session.result
        journal.record_ok(
            spec.full_name, n_threads,
            attempts=1,
            total_cycles=result.total_cycles,
            truncated=result.truncated,
        )
    assert session_path.read_bytes() == batch_path.read_bytes()
