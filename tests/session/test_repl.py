"""The scriptable shell and the ``repro session`` CLI subcommand."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.session import Session, SessionShell


def _shell():
    session = Session.from_config("cholesky", 4, scale=0.05)
    out = io.StringIO()
    return SessionShell(session, out=out), out


def test_scripted_step_stack_inject_run():
    shell, out = _shell()
    code = shell.run_script(
        "step 2000; stack; inject llc_flush; step 1000; run; stack"
    )
    assert code == 0
    text = out.getvalue()
    assert "partial stack at cycle" in text
    assert "injected llc_flush" in text
    assert "done" in text
    assert shell.session.done
    assert shell.session.perturbations


def test_script_error_exits_nonzero(capsys):
    shell, _ = _shell()
    assert shell.run_script("step 100; inject warp_core") == 1
    assert "unknown perturbation" in capsys.readouterr().err


def test_unknown_command_names_choices(capsys):
    shell, _ = _shell()
    assert shell.run_script("sudo make me a sandwich") == 1
    assert "unknown session command" in capsys.readouterr().err


def test_interact_reads_stream():
    shell, out = _shell()
    code = shell.interact(io.StringIO("status\nstep 1000\nquit\n"))
    assert code == 0
    assert "benchmark=cholesky" in out.getvalue()


def test_save_and_counters_commands(tmp_path):
    shell, out = _shell()
    path = tmp_path / "mid.ckpt"
    code = shell.run_script(f"step 2000; counters; save {path}")
    assert code == 0
    assert path.exists()
    assert "saved checkpoint" in out.getvalue()


def test_cli_session_scripted(capsys):
    code = main([
        "session", "cholesky", "-n", "4", "--scale", "0.05",
        "--run", "step 2000; stack; run; stack",
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "partial stack at cycle" in captured
    assert "cholesky" in captured


def test_cli_session_vectorized(capsys):
    pytest.importorskip("numpy")
    code = main([
        "session", "cholesky", "-n", "4", "--scale", "0.05",
        "--engine", "vectorized", "--run", "run; stack",
    ])
    assert code == 0
    assert "cholesky" in capsys.readouterr().out


def test_cli_session_from_checkpoint(tmp_path, capsys):
    path = tmp_path / "mid.ckpt"
    Session.from_config("cholesky", 4, scale=0.05).step(2_000).save(path)
    code = main([
        "session", "--from-checkpoint", str(path), "--run", "run; stack",
    ])
    assert code == 0
    assert "cholesky" in capsys.readouterr().out


def test_cli_session_requires_benchmark(capsys):
    assert main(["session", "--run", "status"]) == 2
    assert "benchmark" in capsys.readouterr().err


def test_cli_session_unknown_benchmark(capsys):
    assert main(["session", "klingon", "--run", "status"]) == 2
