"""Property: every step partition of a run is the same run.

The keystone guarantee of the ISSUE-10 refactor —

    step(N) then step(M)  ≡  step(N+M)  ≡  one-shot batch run

— holds for *arbitrary* partitions, including a snapshot/restore onto a
fresh session mid-run and a reference↔vectorized backend hop at the
restore point (checkpoint state is backend-portable).  Hypothesis
drives the partition; the comparison is the canonical JSON of the full
engine state tree plus the accounting report, so a single diverging
counter anywhere fails.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import MachineConfig
from repro.session import Session, SimulationKernel
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name

BENCH = "cholesky"
N_THREADS = 4
SCALE = 0.05
MAX_CYCLES = 2_000_000


def canon(state: dict) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def _one_shot() -> Session:
    return Session.from_config(
        BENCH, N_THREADS, scale=SCALE, max_cycles=MAX_CYCLES,
    ).run()


@pytest.fixture(scope="module")
def one_shot():
    session = _one_shot()
    return canon(session.snapshot()), session.stack()


def _has_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    steps=st.lists(st.integers(500, 50_000), min_size=1, max_size=6),
    restore_at=st.integers(0, 5),
    hop_backend=st.booleans(),
)
def test_any_partition_matches_one_shot(
    one_shot, steps, restore_at, hop_backend
):
    expected_state, expected_stack = one_shot
    if hop_backend and not _has_numpy():
        hop_backend = False
    session = Session.from_config(
        BENCH, N_THREADS, scale=SCALE, max_cycles=MAX_CYCLES,
    )
    for i, n_cycles in enumerate(steps):
        if i == restore_at % len(steps):
            # snapshot → fresh session (possibly on the other backend)
            # → restore → continue: must be invisible
            state = session.snapshot()
            engine = (
                "vectorized" if hop_backend
                and session.kernel.engine == "reference" else "reference"
            )
            session = Session.from_config(
                BENCH, N_THREADS, scale=SCALE, max_cycles=MAX_CYCLES,
                engine=engine,
            ).load(state)
        session.step(n_cycles)
    session.run()
    assert canon(session.snapshot()) == expected_state
    assert session.stack() == expected_stack


def test_pause_at_never_mutates():
    """Pausing is a pure return: resuming the same Simulation object
    continues the identical trajectory (engine-level check, below the
    Session layer)."""
    spec = by_name(BENCH)
    machine = MachineConfig(n_cores=N_THREADS)

    reference = SimulationKernel(
        machine, build_program(spec, N_THREADS, scale=SCALE),
    )
    reference.finish()

    paused = SimulationKernel(
        machine, build_program(spec, N_THREADS, scale=SCALE),
    )
    result = paused.step(1_000)
    assert result.paused and not paused.done
    paused.finish()
    assert paused.snapshot() == reference.snapshot()
