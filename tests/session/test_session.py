"""Session facade: observation, perturbation contract, re-coring."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.session import Session


def canon(state: dict) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def _session(**overrides) -> Session:
    kwargs = dict(scale=0.05)
    kwargs.update(overrides)
    return Session.from_config("cholesky", 4, **kwargs)


# ----------------------------------------------------------------------
# observation
# ----------------------------------------------------------------------

def test_peek_stack_is_pure_and_partial():
    session = _session().step(2_000)
    before = canon(session.snapshot())
    stack = session.peek_stack()
    assert stack.truncated
    assert stack.actual_speedup is None
    assert canon(session.snapshot()) == before
    assert not session.done


def test_stack_carries_actual_speedup():
    stack = _session().stack()
    assert stack.actual_speedup is not None
    assert not stack.truncated


def test_render_stack_partial_vs_final():
    session = _session().step(2_000)
    partial = session.render_stack()
    assert partial.startswith(f"partial stack at cycle {session.cycle}")
    assert not session.done  # rendering is a pure peek
    final = session.run().render_stack()
    assert "partial stack" not in final


def test_counters_and_status():
    session = _session().step(2_000)
    counters = session.counters()
    assert counters  # live accountant snapshot
    status = session.status()
    assert status["benchmark"] == "cholesky"
    assert status["n_threads"] == 4
    assert not status["done"]
    assert status["cycle"] == session.cycle


def test_repr_is_notebook_friendly():
    session = _session()
    assert "cholesky" in repr(session)
    assert "running" in repr(session)
    session.run()
    assert "done" in repr(session)
    session_p = _session().step(1_000).inject("llc_flush")
    assert "perturbation" in repr(session_p)


def test_events_bus():
    session = _session(events=True)
    session.run()
    assert session.events
    assert session.bus.n_emitted == len(session.events)


# ----------------------------------------------------------------------
# perturbations
# ----------------------------------------------------------------------

def test_perturbed_replay_is_deterministic():
    def run():
        s = _session()
        s.step(2_000).inject("llc_flush")
        s.step(1_000).inject("mem_spike", factor=3.0)
        s.step(500).swap("spin_detector", "li")
        s.run()
        return s
    a, b = run(), run()
    assert canon(a.snapshot()) == canon(b.snapshot())
    assert a.perturbations == b.perturbations


def test_perturbed_stack_loses_reference():
    session = _session().step(2_000).inject("llc_flush").run()
    assert session.stack().actual_speedup is None


def test_perturbed_session_refuses_save(tmp_path):
    session = _session().step(2_000).inject("llc_flush")
    with pytest.raises(ConfigError, match="perturbed"):
        session.save(tmp_path / "x.ckpt")


def test_unknown_perturbation_names_choices():
    session = _session().step(1_000)
    with pytest.raises(ConfigError) as exc:
        session.inject("cosmic_ray")
    assert "llc_flush" in str(exc.value.choices)


def test_perturb_after_done_refused():
    session = _session().run()
    with pytest.raises(ConfigError, match="completed"):
        session.inject("llc_flush")
    with pytest.raises(ConfigError, match="completed"):
        session.swap("scheduler", "earliest")


def test_swap_unknown_kind_refused():
    session = _session().step(1_000)
    with pytest.raises(ConfigError) as exc:
        session.swap("replacement", "lru")
    assert "scheduler" in str(exc.value.choices)


def test_llc_flush_changes_trajectory():
    clean = _session().run()
    flushed = _session().step(2_000).inject("llc_flush").run()
    assert canon(clean.snapshot()) != canon(flushed.snapshot())


def test_mem_spike_slows_the_run():
    clean = _session().run()
    spiked = _session().step(1_000).inject("mem_spike", factor=8.0).run()
    assert spiked.result.total_cycles > clean.result.total_cycles


# ----------------------------------------------------------------------
# re-coring
# ----------------------------------------------------------------------

def test_recored_session_is_fresh_cell():
    session = _session()
    wider = session.recored(8)
    assert wider.n_threads == 8
    assert wider.cycle == 0
    assert wider.scale == session.scale
    stack = wider.stack()
    assert stack.n_threads == 8
