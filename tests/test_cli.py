"""The command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

SCALE = ["--scale", "0.05"]


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("list", "stack", "curve", "tree", "regions",
                        "timeline", "cpi", "cost", "run-trace", "trace",
                        "sweep"):
            assert command in text

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cholesky" in out
        assert "ferret_small" in out
        assert out.count("\n") == 29  # header + 28 benchmarks

    def test_cost(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "952 B/core" in out
        assert "217 B/core" in out

    def test_stack(self, capsys):
        assert main(["stack", "dedup_small", "-n", "4"] + SCALE) == 0
        out = capsys.readouterr().out
        assert "speedup stack: dedup_small" in out
        assert "largest bottleneck" in out or "no significant" in out

    def test_stack_with_llc_override(self, capsys):
        assert main(
            ["stack", "blackscholes_small", "-n", "2", "--llc-mb", "4"]
            + SCALE
        ) == 0
        assert "speedup stack" in capsys.readouterr().out

    def test_timeline(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main(
            ["timeline", "lud", "-n", "4", "--width", "30",
             "--out", str(out_file)] + SCALE
        ) == 0
        out = capsys.readouterr().out
        assert "core  0" in out
        assert "utilization" in out
        data = json.loads(out_file.read_text())
        assert data["traceEvents"]

    def test_regions(self, capsys):
        assert main(["regions", "lud", "-n", "4"] + SCALE) == 0
        out = capsys.readouterr().out
        assert "region stacks: lud" in out
        assert "imbalance" in out

    def test_regions_without_barriers(self, capsys):
        # blackscholes has only the final barrier; use a no-barrier spec
        # via run-trace instead: regions on blackscholes still has the
        # final convergence barrier, so pick the error path with a
        # custom trace-based check below; here just assert it runs.
        assert main(["regions", "blackscholes_small", "-n", "2"] + SCALE) == 0

    def test_cpi(self, capsys):
        assert main(["cpi", "dedup_small", "-n", "4"] + SCALE) == 0
        assert "eff.CPI" in capsys.readouterr().out

    def test_curve(self, capsys):
        assert main(["curve", "blackscholes_small"] + SCALE) == 0
        out = capsys.readouterr().out
        assert "16 threads" in out

    def test_run_trace(self, capsys, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("T0 C 100\nT1 C 100\nT0 BAR 0\nT1 BAR 0\n")
        assert main(["run-trace", str(path), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "2 threads on 2 cores" in out
        assert "core  0" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["stack", "nope", "-n", "2"] + SCALE)

    def test_run_trace_parse_error_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("T0 C 100\nT0 FROB 1\n")
        assert main(["run-trace", str(path)]) == 2
        err = capsys.readouterr().err
        assert f"{path}:2" in err

    def test_run_trace_max_cycles_truncates(self, capsys, tmp_path):
        path = tmp_path / "long.trace"
        path.write_text("".join("T0 C 1000\n" for __ in range(100)))
        assert main(["run-trace", str(path), "--max-cycles", "5000"]) == 0
        assert "TRUNCATED at max-cycles" in capsys.readouterr().out


class TestSweep:
    def test_injected_fault_then_resume(self, capsys, tmp_path):
        """End-to-end acceptance flow: a sweep with a deadlock injected
        into one cell finishes the others, reports the failure (exit 1),
        and a --resume re-runs only the failed cell."""
        journal = tmp_path / "sweep.json"
        base = ["sweep", "--benchmarks", "cholesky,blackscholes_small",
                "-n", "2", "--scale", "0.05", "--journal", str(journal)]
        assert main(base + ["--inject", "deadlock@cholesky:2"]) == 1
        out = capsys.readouterr().out
        assert "FAILED  cholesky:2" in out
        assert "ok      blackscholes_small:2" in out
        assert "1 failed" in out
        assert "DeadlockError" in out
        assert journal.exists()

        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "ok      cholesky:2" in out
        assert "resumed blackscholes_small:2" in out

    def test_bad_inject_spec_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["sweep", "--benchmarks", "cholesky",
                  "--inject", "deadlock-cholesky-2"])

    def test_unknown_benchmark_listed_up_front(self):
        with pytest.raises(KeyError):
            main(["sweep", "--benchmarks", "choleski", "-n", "2"])


class TestTrace:
    def test_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        from repro.observability import validate_trace_events

        out_path = tmp_path / "trace.json"
        assert main(["trace", "cholesky", "-n", "2", "--scale", "0.1",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "cholesky:2" in out and str(out_path) in out
        doc = json.loads(out_path.read_text())
        assert validate_trace_events(doc) == []
        assert doc["otherData"]["benchmark"] == "cholesky"

    def test_trace_max_cycles_reports_truncation(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "cholesky", "-n", "2", "--scale", "0.1",
                     "--max-cycles", "2000",
                     "--out", str(out_path)]) == 0
        assert "TRUNCATED" in capsys.readouterr().out


class TestSweepTelemetry:
    BASE = ["sweep", "--benchmarks", "blackscholes_small", "-n", "2"] + SCALE

    def test_emit_metrics_writes_registry(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(self.BASE + ["--emit-metrics", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["counters"]["sim.cells"] == 1
        assert doc["counters"]["runtime.cells_ok"] == 1
        assert f"metrics written to {path}" in capsys.readouterr().out

    def test_progress_renders_to_stderr(self, capsys):
        assert main(self.BASE + ["--progress"]) == 0
        err = capsys.readouterr().err
        assert "sweep 1/1 ok=1" in err
        assert "finished" in err

    def test_heartbeat_without_progress_keeps_stderr_quiet(
        self, capsys, tmp_path
    ):
        path = tmp_path / "heartbeat.json"
        assert main(self.BASE + ["--heartbeat", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["done"] == doc["total"] == 1
        assert "sweep 1/1" not in capsys.readouterr().err


class TestLogging:
    def test_repeated_invocations_do_not_stack_handlers(self):
        import logging

        root = logging.getLogger()
        main(["-v", "list"])
        first = len(root.handlers)
        main(["-v", "list"])
        main(["list"])
        assert len(root.handlers) == first

    def test_log_json_emits_one_object_per_record(self, capsys):
        assert main(["--log-json", "-v", "sweep", "--benchmarks",
                     "blackscholes_small", "-n", "2"] + SCALE) == 0
        err_lines = [
            line for line in capsys.readouterr().err.splitlines() if line
        ]
        assert err_lines
        for line in err_lines:
            record = json.loads(line)
            assert {"ts", "level", "logger", "message"} <= set(record)

    def test_verbosity_level_updates_on_reinvocation(self, capsys):
        import logging

        main(["-v", "list"])
        assert logging.getLogger().level == logging.INFO
        main(["list"])
        assert logging.getLogger().level == logging.WARNING


class TestConfigCommands:
    @staticmethod
    def write_config(tmp_path, **overrides):
        """A tiny, fast experiment config as a TOML file."""
        lines = [
            "[machine]",
            "n_cores = 4",
            "",
            "[workload]",
            'benchmarks = ["blackscholes_small"]',
            "thread_counts = [2]",
            "scale = 0.05",
            "",
            "[run]",
            'on_error = "abort"',
        ]
        for key, value in overrides.items():
            lines.append(f"{key} = {value}")
        path = tmp_path / "exp.toml"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_show_defaults_as_toml(self, capsys):
        import tomllib

        assert main(["config", "show"]) == 0
        doc = tomllib.loads(capsys.readouterr().out)
        assert doc["machine"]["n_cores"] == 16
        assert doc["machine"]["llc"]["replacement"] == "lru"
        assert doc["run"]["on_error"] == "skip"

    def test_show_json(self, capsys):
        assert main(["config", "show", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["machine"]["accounting"]["spin_detector"] == "tian"

    def test_show_resolves_file(self, capsys, tmp_path):
        import tomllib

        path = self.write_config(tmp_path)
        assert main(["config", "show", str(path)]) == 0
        doc = tomllib.loads(capsys.readouterr().out)
        assert doc["machine"]["n_cores"] == 4
        # Defaults are merged in, not just the file echoed back.
        assert doc["machine"]["llc"]["size_bytes"] == 2 * 1024 * 1024

    def test_validate_good_config(self, capsys, tmp_path):
        path = self.write_config(tmp_path)
        assert main(["config", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"{path}: OK" in out
        assert "machine: 4 cores" in out
        assert "registered replacement: fifo, lru, random" in out
        assert "registered spin_detector: li, tian" in out

    def test_validate_bad_component_lists_choices(self, tmp_path):
        from repro.errors import ConfigError

        path = tmp_path / "bad.toml"
        path.write_text(
            "[machine.llc]\nsize_bytes = 2097152\nassoc = 16\n"
            'replacement = "plru"\n',
            encoding="utf-8",
        )
        with pytest.raises(ConfigError) as exc:
            main(["config", "validate", str(path)])
        assert exc.value.choices == ("fifo", "lru", "random")

    def test_validate_unknown_benchmark(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            '[workload]\nbenchmarks = ["choleski"]\n', encoding="utf-8"
        )
        with pytest.raises(KeyError):
            main(["config", "validate", str(path)])

    def test_stack_with_config(self, capsys, tmp_path):
        path = self.write_config(tmp_path)
        assert main(["stack", "blackscholes_small",
                     "--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "speedup stack: blackscholes_small" in out

    def test_sweep_with_config(self, capsys, tmp_path):
        path = self.write_config(tmp_path)
        assert main(["sweep", "--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok      blackscholes_small:2" in out

    def test_flags_override_config(self, capsys, tmp_path):
        path = self.write_config(tmp_path)
        assert main(["sweep", "--config", str(path),
                     "--benchmarks", "cholesky", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "cholesky:2" in out
        assert "blackscholes_small" not in out
