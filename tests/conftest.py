"""Shared fixtures for the test suite.

Machines and workloads are kept tiny so the whole suite runs in well
under a minute; the full-size experiments live under ``benchmarks/``.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden speedup-stack fixtures under "
             "tests/golden/fixtures/ instead of comparing against them",
    )

from repro.config import KB, MB, CacheConfig, MachineConfig
from repro.workloads.program import (
    BarrierWait,
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
)
from repro.workloads.spec import BenchmarkSpec


@pytest.fixture
def machine4() -> MachineConfig:
    """A small 4-core machine (full default hierarchy)."""
    return MachineConfig(n_cores=4)


@pytest.fixture
def machine1() -> MachineConfig:
    return MachineConfig(n_cores=1)


@pytest.fixture
def tiny_llc_machine() -> MachineConfig:
    """4 cores with a tiny LLC so capacity effects appear quickly."""
    return MachineConfig(
        n_cores=4,
        llc=CacheConfig(size_bytes=64 * KB, assoc=8, hit_latency=30,
                        hidden_latency=30),
    )


@pytest.fixture
def tiny_spec() -> BenchmarkSpec:
    """A miniature benchmark spec for fast end-to-end runs."""
    return BenchmarkSpec(
        name="tiny",
        total_kinstrs=60,
        mem_per_kinstr=80,
        private_ws_kb=16,
        n_locks=1,
        cs_per_kinstr=0.3,
        cs_len_instrs=200,
        par_overhead=0.0,
    )


def compute_only_program(n_threads: int, instrs_per_thread: int = 4000) -> Program:
    """All-compute program: every thread does the same work."""
    def body():
        for __ in range(instrs_per_thread // 100):
            yield Compute(100)

    return Program("compute-only", [body() for __ in range(n_threads)])


def lock_step_program(n_threads: int, iters: int = 30) -> Program:
    """Threads alternate compute with a short shared critical section."""
    def body(tid: int):
        for i in range(iters):
            yield Compute(100)
            yield Load(0x100_0000 + (tid << 20) + (i % 32) * 64)
            yield LockAcquire(0)
            yield Compute(80)
            yield Store(0x9000_0000)
            yield LockRelease(0)
        yield BarrierWait(0)

    return Program("lock-step", [body(t) for t in range(n_threads)])
