"""Address-stream generators: determinism, ranges, skew."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import generators as g


class TestSeeding:
    def test_stable_across_calls(self):
        assert g.seed_for("bench", 3) == g.seed_for("bench", 3)

    def test_distinct_per_thread_and_name(self):
        seeds = {g.seed_for(name, tid)
                 for name in ("a", "b") for tid in range(8)}
        assert len(seeds) == 16


class TestPrivateBase:
    def test_regions_disjoint(self):
        for tid in range(15):
            end = g.private_base(tid) + 32 * 1024 * 1024
            assert end <= g.private_base(tid + 1)

    def test_bank_interleaving(self):
        """Thread bases must not all land on the same DRAM bank."""
        banks = {(g.private_base(tid) >> 12) & 7 for tid in range(16)}
        assert len(banks) > 1


class TestAddressStream:
    def test_deterministic(self):
        a = g.AddressStream(0x1000, 4096, random.Random(7))
        b = g.AddressStream(0x1000, 4096, random.Random(7))
        assert [a.next_addr() for __ in range(50)] == [
            b.next_addr() for __ in range(50)
        ]

    def test_addresses_within_region(self):
        stream = g.AddressStream(0x1000, 4096, random.Random(1))
        for __ in range(500):
            addr = stream.next_addr()
            assert 0x1000 <= addr < 0x1000 + 4096

    def test_pure_stride_wraps(self):
        stream = g.AddressStream(
            0, 256, random.Random(1), stride_fraction=1.0, stride=64
        )
        addrs = [stream.next_addr() for __ in range(6)]
        assert addrs == [0, 64, 128, 192, 0, 64]

    def test_sub_line_stride(self):
        stream = g.AddressStream(
            0, 256, random.Random(1), stride_fraction=1.0, stride=8
        )
        addrs = [stream.next_addr() for __ in range(9)]
        # 8 accesses per 64-byte line before moving on
        assert len({a // 64 for a in addrs[:8]}) == 1
        assert addrs[8] // 64 == 1

    def test_too_small_region_rejected(self):
        with pytest.raises(ValueError):
            g.AddressStream(0, 32, random.Random(1))


class TestSharedStream:
    def test_hot_bias(self):
        stream = g.SharedStream(
            1024 * 1024, random.Random(3), hot_fraction=0.9, hot_lines=16
        )
        addrs = [stream.next_addr() for __ in range(1000)]
        hot = sum(1 for a in addrs if (a - g.SHARED_BASE) // 64 < 16)
        assert hot > 800

    def test_within_region(self):
        stream = g.SharedStream(4096, random.Random(3))
        for __ in range(200):
            addr = stream.next_addr()
            assert g.SHARED_BASE <= addr < g.SHARED_BASE + 4096


class TestSkew:
    def test_disabled_for_single_thread(self):
        assert g.skew_factor(0, 0, 1, 0.9) == 1.0

    def test_disabled_for_zero_amplitude(self):
        assert g.skew_factor(3, 2, 8, 0.0) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 16), st.integers(0, 20),
           st.floats(0.05, 0.95))
    def test_mean_close_to_one(self, n_threads, phase, amplitude):
        values = [
            g.skew_factor(tid, phase, n_threads, amplitude)
            for tid in range(n_threads)
        ]
        mean = sum(values) / n_threads
        assert abs(mean - 1.0) < 0.15

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 16), st.integers(0, 20), st.floats(0.05, 0.95))
    def test_bounded_by_amplitude(self, n_threads, phase, amplitude):
        for tid in range(n_threads):
            value = g.skew_factor(tid, phase, n_threads, amplitude)
            assert 1.0 - amplitude - 1e-9 <= value <= 1.0 + amplitude + 1e-9

    def test_straggler_rotates_across_phases(self):
        slowest = {
            max(range(8), key=lambda t: g.skew_factor(t, p, 8, 0.5))
            for p in range(8)
        }
        assert len(slowest) > 1


class TestChunks:
    def test_exact_division(self):
        assert list(g.chunks(300, 100)) == [100, 100, 100]

    def test_remainder(self):
        assert list(g.chunks(250, 100)) == [100, 100, 50]

    def test_zero(self):
        assert list(g.chunks(0, 100)) == []

    @given(st.integers(0, 10_000), st.integers(1, 500))
    def test_sum_preserved(self, total, chunk):
        parts = list(g.chunks(total, chunk))
        assert sum(parts) == total
        assert all(0 < p <= chunk for p in parts)
