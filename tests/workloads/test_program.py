"""Program IR: ops, tags, program construction."""

from __future__ import annotations

import pytest

from repro.workloads.program import (
    BarrierWait,
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
    TAG_BARRIER_WAIT,
    TAG_COMPUTE,
    TAG_LOAD,
    TAG_LOCK_ACQUIRE,
    TAG_LOCK_RELEASE,
    TAG_STORE,
)


class TestOps:
    def test_tags_distinct(self):
        tags = {
            Compute.TAG, Load.TAG, Store.TAG,
            LockAcquire.TAG, LockRelease.TAG, BarrierWait.TAG,
        }
        assert len(tags) == 6

    def test_tag_constants_match(self):
        assert Compute(1).TAG == TAG_COMPUTE
        assert Load(0).TAG == TAG_LOAD
        assert Store(0).TAG == TAG_STORE
        assert LockAcquire(0).TAG == TAG_LOCK_ACQUIRE
        assert LockRelease(0).TAG == TAG_LOCK_RELEASE
        assert BarrierWait(0).TAG == TAG_BARRIER_WAIT

    def test_load_defaults(self):
        load = Load(0x1234)
        assert load.overlappable
        assert not load.dependent
        assert load.pc == 0

    def test_reprs(self):
        assert "Compute(5)" == repr(Compute(5))
        assert "0x1234" in repr(Load(0x1234))
        assert "0x10" in repr(Store(0x10))
        assert "LockAcquire(2)" == repr(LockAcquire(2))
        assert "LockRelease(2)" == repr(LockRelease(2))
        assert "BarrierWait(1)" == repr(BarrierWait(1))


class TestProgram:
    def test_from_factory(self):
        program = Program.from_factory(
            "p", 3, lambda tid: iter([Compute(tid + 1)])
        )
        assert program.n_threads == 3
        ops = [list(body) for body in program.thread_bodies]
        assert [op[0].n for op in ops] == [1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Program("p", [])

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            Program("p", [iter(())], warmup=[[1], [2]])

    def test_defaults(self):
        program = Program("p", [iter(())])
        assert program.warmup is None
        assert not program.lock_fifo_handoff
        assert program.spin_threshold_override is None
