"""The false-sharing workload knob (Section 3.2's pathology)."""

from __future__ import annotations

from repro.config import MachineConfig
from repro.sim.engine import simulate
from repro.workloads.program import Store
from repro.workloads.spec import (
    BenchmarkSpec,
    FALSE_SHARING_BASE,
    build_program,
)


def spec(fs: float) -> BenchmarkSpec:
    return BenchmarkSpec(
        name="fs", total_kinstrs=80, mem_per_kinstr=120, private_ws_kb=16,
        store_fraction=0.4, false_sharing_fraction=fs,
        false_sharing_lines=8, par_overhead=0.0,
    )


class TestGeneration:
    def test_fs_stores_target_shared_lines_own_words(self):
        program = build_program(spec(1.0), 4)
        for tid, body in enumerate(program.thread_bodies):
            fs_stores = [
                op for op in body
                if isinstance(op, Store) and op.addr >= FALSE_SHARING_BASE
            ]
            assert fs_stores, f"thread {tid} emitted no FS stores"
            for op in fs_stores:
                offset = op.addr - FALSE_SHARING_BASE
                assert offset // 64 < 8          # within the hot lines
                assert offset % 64 == (tid % 8) * 8  # own word

    def test_disabled_by_default(self):
        program = build_program(spec(0.0), 2)
        for body in program.thread_bodies:
            for op in body:
                if isinstance(op, Store):
                    assert op.addr < FALSE_SHARING_BASE


class TestEffect:
    def test_false_sharing_causes_coherency_misses(self):
        machine = MachineConfig(n_cores=4)
        clean = simulate(machine, build_program(spec(0.0), 4))
        dirty = simulate(machine, build_program(spec(0.6), 4))
        coherency_clean = sum(s.coherency_misses for s in clean.chip.stats)
        coherency_dirty = sum(s.coherency_misses for s in dirty.chip.stats)
        assert coherency_dirty > 10 * max(1, coherency_clean)

    def test_false_sharing_causes_invalidations(self):
        machine = MachineConfig(n_cores=4)
        dirty = simulate(machine, build_program(spec(0.6), 4))
        assert dirty.chip.directory.n_invalidations > 100

    def test_single_thread_unaffected(self):
        """One thread writing 'falsely shared' lines contends with
        nobody: no invalidations."""
        machine = MachineConfig(n_cores=1)
        result = simulate(machine, build_program(spec(0.6), 1))
        assert result.chip.directory.n_invalidations == 0
