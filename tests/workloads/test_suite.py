"""The 28-benchmark suite: completeness and metadata consistency."""

from __future__ import annotations

import pytest

from repro.workloads.suite import (
    FIG5_BENCHMARKS,
    FIG8_BENCHMARKS,
    SUITE,
    by_name,
)


class TestSuiteShape:
    def test_28_benchmarks(self):
        assert len(SUITE) == 28

    def test_names_unique(self):
        names = [spec.full_name for spec in SUITE]
        assert len(set(names)) == 28

    def test_suites_match_paper(self):
        suites = {spec.suite for spec in SUITE}
        assert suites == {"splash2", "parsec", "rodinia"}

    def test_counts_per_suite(self):
        by_suite = {}
        for spec in SUITE:
            by_suite[spec.suite] = by_suite.get(spec.suite, 0) + 1
        # Figure 6 has 28 rows: 7 SPLASH-2, 16 PARSEC (input classes
        # counted separately), 5 Rodinia.
        assert by_suite["splash2"] == 7
        assert by_suite["rodinia"] == 5
        assert by_suite["parsec"] == 16


class TestTargets:
    def test_every_spec_has_target(self):
        for spec in SUITE:
            assert spec.target_speedup_16 is not None
            assert 1.0 < spec.target_speedup_16 <= 16.0

    def test_expected_class_consistent_with_target(self):
        for spec in SUITE:
            target = spec.target_speedup_16
            if target >= 10:
                assert spec.expected_class == "good", spec.full_name
            elif target < 5:
                assert spec.expected_class == "poor", spec.full_name
            else:
                assert spec.expected_class == "moderate", spec.full_name

    def test_paper_headline_speedups(self):
        assert by_name("blackscholes_medium").target_speedup_16 == 15.94
        assert by_name("cholesky").target_speedup_16 == 5.02
        assert by_name("ferret_small").target_speedup_16 == 2.94
        assert by_name("radix").target_speedup_16 == 11.60

    def test_yielding_dominates_most_benchmarks(self):
        """Figure 6: yielding is the largest component for 23 of 28."""
        dominant_yield = sum(
            1 for spec in SUITE
            if spec.expected_top and spec.expected_top[0] == "yielding"
        )
        assert dominant_yield >= 20

    def test_cholesky_is_the_spinning_benchmark(self):
        assert by_name("cholesky").expected_top[0] == "spinning"


class TestLookup:
    def test_by_name(self):
        assert by_name("cholesky").name == "cholesky"
        assert by_name("facesim_medium").input_class == "medium"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            by_name("nonexistent")


class TestFigureLists:
    def test_fig5_benchmarks_exist(self):
        for name in FIG5_BENCHMARKS:
            by_name(name)
        assert "cholesky" in FIG5_BENCHMARKS

    def test_fig8_benchmarks_exist_and_share(self):
        for name in FIG8_BENCHMARKS:
            spec = by_name(name)
            assert spec.shared_ws_kb > 0, f"{name} needs shared data"
            assert spec.shared_fraction > 0

    def test_fig8_has_seven_benchmarks(self):
        assert len(FIG8_BENCHMARKS) == 7


class TestWeakScalingStory:
    def test_swaptions_input_classes(self):
        """Scaling improves with input size (weak-scaling narrative)."""
        small = by_name("swaptions_small")
        medium = by_name("swaptions_medium")
        assert medium.total_kinstrs > small.total_kinstrs
        assert medium.target_speedup_16 > small.target_speedup_16

    def test_swaptions_small_overhead_from_paper(self):
        """Section 6 reports ~26% extra instructions for swaptions_small."""
        assert by_name("swaptions_small").par_overhead == pytest.approx(0.26)

    def test_fluidanimate_overhead_from_paper(self):
        assert by_name("fluidanimate_medium").par_overhead == pytest.approx(0.18)
