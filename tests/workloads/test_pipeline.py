"""The ferret-style pipeline program (Figure 7's workload)."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.osmodel.thread import FINISHED
from repro.sim.engine import simulate
from repro.workloads.pipeline import _item_cost, build_pipeline_program
from repro.workloads.program import Compute


def run(n_threads: int, n_cores: int | None = None, **kw):
    machine = MachineConfig(n_cores=n_cores or n_threads)
    return simulate(machine, build_pipeline_program(n_threads, **kw))


class TestConstruction:
    def test_single_thread_reference(self):
        program = build_pipeline_program(1, n_items=10)
        assert program.n_threads == 1

    def test_multi_thread_layout(self):
        program = build_pipeline_program(5, n_items=20)
        assert program.n_threads == 5  # 1 serial stage + 4 workers
        assert program.warmup is not None
        assert len(program.warmup) == 5

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            build_pipeline_program(0)

    def test_items_divided_across_workers(self):
        """All items are produced exactly once regardless of workers."""
        for n_threads in (2, 3, 5, 16):
            result = run(n_threads, n_cores=4, n_items=21,
                         serial_instrs=200, work_instrs=400)
            assert all(t.state == FINISHED for t in result.threads)


class TestConservation:
    def test_total_serial_work_constant(self):
        """The serial stage processes every item exactly once."""
        result = run(4, n_items=12, serial_instrs=500, work_instrs=400)
        serial = result.threads[0]
        # 12 items x 500 serial instructions, plus queue plumbing
        assert serial.instrs >= 12 * 500
        assert serial.instrs < 12 * 500 + 12 * 400

    def test_reference_does_same_item_work(self):
        mt = run(4, n_items=12, serial_instrs=500, work_instrs=900)
        st = run(1, n_items=12, serial_instrs=500, work_instrs=900)
        mt_work = mt.total_instrs - mt.total_spin_instrs
        st_work = st.total_instrs
        # pipeline plumbing (polling, locks, futexes) adds some, but the
        # item work is identical
        assert st_work <= mt_work < st_work * 1.6


class TestItemCosts:
    def test_heterogeneous_costs(self):
        heavy = _item_cost(0, 99, 1000)
        light = _item_cost(98, 99, 1000)
        assert heavy > 2 * light

    def test_mean_cost_near_nominal(self):
        n = 99
        total = sum(_item_cost(k, n, 1000) for k in range(n))
        assert total / n == pytest.approx(1000, rel=0.05)


class TestPipelineBehaviour:
    def test_bounded_queue_respected(self):
        """Producers cannot run ahead more than the queue bound."""
        import repro.workloads.pipeline as pl

        queue_sizes = []
        orig = pl._Queue.__init__

        class SpyQueue(pl._Queue):
            pass

        result = run(6, n_cores=6, n_items=30, queue_bound=4,
                     serial_instrs=2000, work_instrs=200)
        assert all(t.state == FINISHED for t in result.threads)
        # Workers finish early (cheap items) and block on the full
        # queue: the serial stage ends last.
        serial_end = result.threads[0].end_time
        assert serial_end == result.total_cycles

    def test_oversubscription_beats_few_threads_with_skewed_items(self):
        """The Figure 7 effect at miniature scale: 8 threads on 4 cores
        beat 4 threads on 4 cores when item costs are heterogeneous."""
        st = run(1, n_items=45, serial_instrs=2000, work_instrs=4000)
        matched = run(4, n_cores=4, n_items=45, serial_instrs=2000,
                      work_instrs=4000)
        oversub = run(8, n_cores=4, n_items=45, serial_instrs=2000,
                      work_instrs=4000)
        s_matched = st.total_cycles / matched.total_cycles
        s_oversub = st.total_cycles / oversub.total_cycles
        assert s_oversub > s_matched * 0.98

    def test_determinism(self):
        a = run(4, n_items=15, serial_instrs=300, work_instrs=600)
        b = run(4, n_items=15, serial_instrs=300, work_instrs=600)
        assert a.total_cycles == b.total_cycles
