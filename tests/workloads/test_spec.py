"""Program synthesis from benchmark specs."""

from __future__ import annotations

import pytest

from repro.workloads.program import (
    BarrierWait,
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    Store,
)
from repro.workloads.spec import BenchmarkSpec, build_program
from repro.workloads import generators as g


def collect(spec: BenchmarkSpec, n_threads: int):
    """Materialize all ops per thread."""
    program = build_program(spec, n_threads)
    return program, [list(body) for body in program.thread_bodies]


def instr_count(ops) -> int:
    total = 0
    for op in ops:
        if isinstance(op, Compute):
            total += op.n
        elif isinstance(op, (Load, Store)):
            total += 1
    return total


BASE = BenchmarkSpec(
    name="t", total_kinstrs=40, mem_per_kinstr=100, private_ws_kb=16,
    par_overhead=0.0,
)


class TestWorkDivision:
    def test_strong_scaling_divides_work(self):
        __, one = collect(BASE, 1)
        __, four = collect(BASE, 4)
        total_one = instr_count(one[0])
        total_four = sum(instr_count(ops) for ops in four)
        assert abs(total_four - total_one) / total_one < 0.05

    def test_single_thread_close_to_spec_total(self):
        __, bodies = collect(BASE, 1)
        assert abs(instr_count(bodies[0]) - 40_000) / 40_000 < 0.05

    def test_par_overhead_adds_instructions(self):
        spec = BenchmarkSpec(
            name="t", total_kinstrs=40, mem_per_kinstr=0, par_overhead=0.25,
        )
        __, one = collect(spec, 1)
        __, two = collect(spec, 2)
        total_one = instr_count(one[0])
        total_two = sum(instr_count(ops) for ops in two)
        # MT executes ~25% more instructions; ST is unaffected
        assert total_two / total_one == pytest.approx(1.25, rel=0.03)


class TestMemoryMix:
    def test_memory_op_rate(self):
        __, bodies = collect(BASE, 2)
        for ops in bodies:
            mem = sum(1 for op in ops if isinstance(op, (Load, Store)))
            total = instr_count(ops)
            assert mem / total == pytest.approx(0.1, rel=0.15)

    def test_private_addresses_in_own_region(self):
        __, bodies = collect(BASE, 2)
        for tid, ops in enumerate(bodies):
            base = g.private_base(tid)
            for op in ops:
                if isinstance(op, (Load, Store)) and op.addr < g.SHARED_BASE:
                    assert base <= op.addr < base + 32 * 1024 * 1024

    def test_shared_accesses_present_when_configured(self):
        spec = BenchmarkSpec(
            name="t", total_kinstrs=40, mem_per_kinstr=100,
            shared_ws_kb=64, shared_fraction=0.5, par_overhead=0.0,
        )
        __, bodies = collect(spec, 2)
        shared = sum(
            1 for ops in bodies for op in ops
            if isinstance(op, (Load, Store))
            and g.SHARED_BASE <= op.addr < g.SHARED_BASE + 0x100_0000
        )
        assert shared > 0

    def test_dependent_fraction_marks_loads(self):
        spec = BenchmarkSpec(
            name="t", total_kinstrs=40, mem_per_kinstr=100,
            dependent_fraction=0.5, store_fraction=0.0, par_overhead=0.0,
        )
        __, bodies = collect(spec, 1)
        loads = [op for op in bodies[0] if isinstance(op, Load)]
        dependent = sum(1 for ld in loads if ld.dependent)
        assert 0.3 < dependent / len(loads) < 0.7


class TestSynchronization:
    def test_critical_sections_emitted(self):
        spec = BenchmarkSpec(
            name="t", total_kinstrs=40, mem_per_kinstr=0,
            n_locks=2, cs_per_kinstr=1.0, cs_len_instrs=100,
            par_overhead=0.0,
        )
        __, bodies = collect(spec, 2)
        for ops in bodies:
            acquires = [op for op in ops if isinstance(op, LockAcquire)]
            releases = [op for op in ops if isinstance(op, LockRelease)]
            assert len(acquires) == len(releases)
            assert len(acquires) == pytest.approx(20, abs=3)
            assert {op.lock_id for op in acquires} <= {0, 1}

    def test_acquire_release_properly_nested(self):
        spec = BenchmarkSpec(
            name="t", total_kinstrs=40, mem_per_kinstr=0,
            cs_per_kinstr=1.0, par_overhead=0.0,
        )
        __, bodies = collect(spec, 2)
        for ops in bodies:
            held = None
            for op in ops:
                if isinstance(op, LockAcquire):
                    assert held is None
                    held = op.lock_id
                elif isinstance(op, LockRelease):
                    assert held == op.lock_id
                    held = None
            assert held is None

    def test_phases_emit_barriers(self):
        spec = BenchmarkSpec(
            name="t", total_kinstrs=40, mem_per_kinstr=0, n_phases=4,
            par_overhead=0.0,
        )
        __, bodies = collect(spec, 2)
        for ops in bodies:
            barriers = [op for op in ops if isinstance(op, BarrierWait)]
            # 3 inter-phase barriers + the final convergence barrier
            assert len(barriers) == 4

    def test_final_barrier_optional(self):
        spec = BenchmarkSpec(
            name="t", total_kinstrs=40, mem_per_kinstr=0,
            final_barrier=False, par_overhead=0.0,
        )
        __, bodies = collect(spec, 2)
        assert not any(
            isinstance(op, BarrierWait) for ops in bodies for op in ops
        )


class TestWarmup:
    def test_warmup_covers_private_ws(self):
        program = build_program(BASE, 2)
        assert program.warmup is not None
        for tid, addrs in enumerate(program.warmup):
            assert len(addrs) == 16 * 1024 // 64
            assert addrs[-1] == g.private_base(tid) + 16 * 1024 - 64

    def test_warmup_includes_shared_and_cold(self):
        spec = BenchmarkSpec(
            name="t", total_kinstrs=10, shared_ws_kb=64, shared_fraction=0.2,
            cold_ws_kb=64, cold_fraction=0.1, private_ws_kb=16,
        )
        program = build_program(spec, 1)
        addrs = program.warmup[0]
        assert len(addrs) == 3 * (64 + 64 + 16) * 1024 // 64 // 3
        # hot private data comes last (most recently used at start)
        assert addrs[-1] < g.SHARED_BASE

    def test_lock_policy_and_spin_threshold_propagate(self):
        spec = BenchmarkSpec(
            name="t", total_kinstrs=10, lock_fifo=True, spin_threshold=99,
        )
        program = build_program(spec, 2)
        assert program.lock_fifo_handoff
        assert program.spin_threshold_override == 99


class TestScaling:
    def test_scaled_reduces_work(self):
        scaled = BASE.scaled(0.25)
        assert scaled.total_kinstrs == 10
        assert BASE.total_kinstrs == 40  # frozen original untouched

    def test_build_program_scale_param(self):
        program = build_program(BASE, 1, scale=0.5)
        total = instr_count(list(program.thread_bodies[0]))
        assert total == pytest.approx(20_000, rel=0.06)

    def test_full_name(self):
        assert BASE.full_name == "t"
        spec = BenchmarkSpec(name="x", input_class="small")
        assert spec.full_name == "x_small"

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            build_program(BASE, 0)


class TestDeterminism:
    def test_same_spec_same_ops(self):
        __, a = collect(BASE, 2)
        __, b = collect(BASE, 2)
        for ops_a, ops_b in zip(a, b):
            assert len(ops_a) == len(ops_b)
            for op_a, op_b in zip(ops_a, ops_b):
                assert type(op_a) is type(op_b)
                if isinstance(op_a, (Load, Store)):
                    assert op_a.addr == op_b.addr
