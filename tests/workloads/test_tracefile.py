"""Trace-file workload format: parsing, serialization, round trips."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.errors import ConfigError, TraceParseError
from repro.osmodel.thread import FINISHED
from repro.robustness.faults import FaultInjector
from repro.sim.engine import simulate
from repro.workloads.program import (
    BarrierWait,
    Compute,
    FutexWait,
    FutexWake,
    Load,
    LockAcquire,
    LockRelease,
    Store,
    YieldCpu,
)
from repro.workloads.tracefile import (
    dump_program,
    dump_trace,
    load_trace,
    parse_trace,
)

TRACE = """
# a two-thread demo trace
T0 C 100
T0 L 0x10000
T0 ACQ 0
T0 S 0x20000
T0 REL 0
T0 BAR 0

T1 C 200
T1 L 0x30000 dep
T1 ACQ 0
T1 S 0x20040
T1 REL 0
T1 BAR 0
"""


class TestParse:
    def test_parse_structure(self):
        program = parse_trace(TRACE)
        assert program.n_threads == 2
        ops = list(program.thread_bodies[0])
        assert isinstance(ops[0], Compute) and ops[0].n == 100
        assert isinstance(ops[1], Load) and ops[1].addr == 0x10000
        assert isinstance(ops[2], LockAcquire)
        assert isinstance(ops[5], BarrierWait)

    def test_flags(self):
        program = parse_trace("T0 L 0x10 dep\nT0 L 0x20 noov\nT0 L 0x30")
        loads = list(program.thread_bodies[0])
        assert loads[0].dependent and not loads[0].overlappable
        assert not loads[1].dependent and not loads[1].overlappable
        assert loads[2].overlappable

    def test_futex_and_yield(self):
        program = parse_trace(
            "T0 FWAIT 0x100\nT1 FWAKE 0x100 all\nT1 YIELD"
        )
        t1 = list(program.thread_bodies[1])
        assert isinstance(t1[0], FutexWake) and t1[0].wake_all
        assert isinstance(t1[1], YieldCpu)

    def test_missing_thread_gets_empty_body(self):
        program = parse_trace("T0 C 10\nT2 C 10")
        assert program.n_threads == 3
        assert list(program.thread_bodies[1]) == []

    def test_runnable(self):
        result = simulate(MachineConfig(n_cores=2), parse_trace(TRACE))
        assert all(t.state == FINISHED for t in result.threads)
        assert result.sync.locks[0].n_acquires == 2

    @pytest.mark.parametrize("bad", [
        "",                      # empty
        "X0 C 10",               # bad thread token
        "T0",                    # missing op
        "T0 C",                  # missing count
        "T0 C 0",                # zero compute
        "T0 C ten",              # bad integer
        "T0 L 0x10 wat",         # unknown flag
        "T0 FROB 1",             # unknown op
        "T-1 C 10",              # negative tid
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_trace(bad)


class TestParseErrors:
    def test_error_carries_source_and_line(self):
        text = "T0 C 10\nT0 C 10\nT0 C ten\n"
        with pytest.raises(TraceParseError) as err:
            parse_trace(text, name="demo.trace")
        assert err.value.source == "demo.trace"
        assert err.value.line_no == 3
        assert "demo.trace:3" in str(err.value)

    def test_is_a_config_error(self):
        with pytest.raises(ConfigError):
            parse_trace("T0 FROB 1")

    @pytest.mark.parametrize("line", [
        "T0 ACQ", "T0 REL", "T0 BAR", "T0 FWAIT", "T0 FWAKE",
    ])
    def test_argless_sync_op_rejected(self, line):
        with pytest.raises(TraceParseError):
            parse_trace(line)

    def test_load_trace_error_names_the_file(self, tmp_path):
        path = tmp_path / "broken.trace"
        path.write_text("T0 C 10\nT0 C nope\n")
        with pytest.raises(TraceParseError) as err:
            load_trace(str(path))
        assert err.value.source == str(path)
        assert err.value.line_no == 2


class TestCorruptedRoundTrip:
    """dump -> corrupt -> parse must fail loudly, never mis-parse."""

    def clean_text(self) -> str:
        ops = [
            [Compute(50), Load(0x1000), Store(0x2000)] * 4,
            [Compute(70), Load(0x3000, dependent=True), Store(0x4000)] * 4,
        ]
        return dump_trace(ops)

    def test_every_corruption_is_a_parse_error(self):
        text = self.clean_text()
        for seed in range(12):
            corrupted = FaultInjector(seed).corrupt_trace(
                text, n_corruptions=2
            )
            assert corrupted != text
            with pytest.raises(TraceParseError) as err:
                parse_trace(corrupted, name=f"fuzz-{seed}")
            assert err.value.source == f"fuzz-{seed}"
            assert err.value.line_no is not None

    def test_uncorrupted_dump_still_round_trips(self):
        text = self.clean_text()
        assert dump_program(parse_trace(text)) == text


class TestDump:
    def test_round_trip(self):
        ops = [
            [Compute(5), Load(0x40, dependent=True), Store(0x80),
             LockAcquire(1), LockRelease(1), BarrierWait(0), YieldCpu(),
             FutexWait(0x100)],
            [Compute(7), Load(0x40, overlappable=False),
             FutexWake(0x100, wake_all=True), BarrierWait(0)],
        ]
        text = dump_trace(ops)
        program = parse_trace(text)
        again = dump_program(program)
        assert again == text

    def test_load_trace_from_file(self, tmp_path):
        path = tmp_path / "demo.trace"
        path.write_text(TRACE)
        program = load_trace(str(path))
        assert program.n_threads == 2
        assert program.name == str(path)
