"""End-to-end differential coverage for the non-default policies.

Each alternative component runs the same tiny workload as its default
counterpart and the results are compared: architectural quantities
(instruction counts, per-core structure) must match, timing may differ,
and everything must be deterministic run-to-run.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import KB, AccountingConfig, CacheConfig, MachineConfig
from repro.experiments.runner import run_accounted, run_experiment
from repro.sim.cache import SetAssocCache
from repro.sim.engine import Simulation
from repro.workloads.spec import build_program
from tests.conftest import lock_step_program


def tiny_llc(replacement: str) -> CacheConfig:
    """An LLC small enough that evictions (and thus the replacement
    policy) actually matter on a miniature trace."""
    return CacheConfig(
        size_bytes=16 * KB, assoc=4, hit_latency=30, hidden_latency=30,
        replacement=replacement,
    )


def machine_with(replacement: str, n_cores: int = 2) -> MachineConfig:
    return MachineConfig(n_cores=n_cores, llc=tiny_llc(replacement))


def run_with_replacement(tiny_spec, replacement: str):
    machine = machine_with(replacement)
    program = build_program(tiny_spec, 2)
    return Simulation(machine, program).run()


class TestReplacementDifferential:
    @pytest.mark.parametrize("policy", ["fifo", "random"])
    def test_alternative_policy_runs_same_workload(self, tiny_spec, policy):
        base = run_with_replacement(tiny_spec, "lru")
        alt = run_with_replacement(tiny_spec, policy)
        # Replacement shifts timing (and with it the spin-loop retries),
        # but the run must complete and stay in the same ballpark.
        assert not alt.truncated
        assert alt.total_cycles > 0
        assert alt.total_instrs == pytest.approx(base.total_instrs, rel=0.10)
        # The tiny LLC forces evictions, so the policy was exercised.
        assert alt.chip.llc.n_evictions > 0

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_policy_is_deterministic(self, tiny_spec, policy):
        first = run_with_replacement(tiny_spec, policy)
        second = run_with_replacement(tiny_spec, policy)
        assert first.total_cycles == second.total_cycles
        assert first.chip.llc.n_hits == second.chip.llc.n_hits
        assert first.chip.llc.n_misses == second.chip.llc.n_misses
        assert first.chip.llc.n_evictions == second.chip.llc.n_evictions

    def test_random_seed_derives_from_geometry(self):
        """Same geometry -> same eviction sequence across instances (the
        seed comes from the cache shape, not process state)."""
        def victims():
            config = CacheConfig(
                size_bytes=2 * 4 * 64, assoc=4, line_bytes=64,
                replacement="random",
            )
            cache = SetAssocCache(config)
            out = []
            for i in range(24):
                victim = cache.fill(i * 2)  # all map to set 0
                if victim:
                    out.append(victim[0])
            return out

        assert victims() == victims()


def spin_cycles(report) -> int:
    return sum(core.spin_detector_cycles for core in report.cores)


class TestSpinDetectorDifferential:
    def make_machine(self, detector: str) -> MachineConfig:
        return replace(
            MachineConfig(n_cores=4),
            accounting=AccountingConfig(spin_detector=detector),
        )

    def test_li_runs_lock_workload(self):
        __, tian_report = run_accounted(
            self.make_machine("tian"), lock_step_program(4)
        )
        li_result, li_report = run_accounted(
            self.make_machine("li"), lock_step_program(4)
        )
        # The detector observes the run; it must not perturb it.
        assert li_result.total_cycles > 0
        assert li_report.tp_cycles == tian_report.tp_cycles
        assert spin_cycles(li_report) >= 0
        assert spin_cycles(tian_report) >= 0

    def test_li_produces_full_stack(self, tiny_spec):
        machine = self.make_machine("li")
        result = run_experiment(
            "tiny-li", machine,
            build_program(tiny_spec, 4), build_program(tiny_spec, 1),
        )
        assert result.stack.actual_speedup is not None
        assert result.stack.estimated_speedup > 0

    def test_detectors_are_deterministic(self):
        for detector in ("tian", "li"):
            machine = self.make_machine(detector)
            __, first = run_accounted(machine, lock_step_program(4))
            __, second = run_accounted(machine, lock_step_program(4))
            assert spin_cycles(first) == spin_cycles(second)
