"""The component registry: resolution, failure modes, extension.

The headline property: a new policy is registrable from *outside*
``repro.sim`` — these tests add one and run a cache with it without
editing any simulator code.
"""

from __future__ import annotations

import pytest

from repro.components import available, kinds, register, resolve, unregister
from repro.components.protocols import ReplacementPolicy, Scheduler
from repro.components.registry import validate_choice
from repro.config import CacheConfig
from repro.errors import ConfigError
from repro.sim.cache import SetAssocCache


class TestResolution:
    def test_builtins_registered(self):
        assert available("replacement") == ("fifo", "lru", "random")
        assert available("spin_detector") == ("li", "tian")
        assert available("page_policy") == ("closed", "open")
        assert available("scheduler") == ("earliest",)
        assert available("engine") == ("reference", "vectorized")
        assert kinds() == (
            "engine", "page_policy", "replacement", "scheduler",
            "spin_detector",
        )

    def test_resolve_returns_factory(self):
        factory = resolve("replacement", "lru")
        policy = factory(CacheConfig(size_bytes=1024, assoc=2))
        assert isinstance(policy, ReplacementPolicy)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigError) as exc:
            resolve("replacement", "plru")
        assert "plru" in str(exc.value)
        assert exc.value.choices == ("fifo", "lru", "random")
        assert exc.value.field == "replacement"

    def test_unknown_kind_lists_kinds(self):
        with pytest.raises(ConfigError, match="registered kinds"):
            resolve("prefetcher", "stride")

    def test_unknown_name_is_a_value_error(self):
        # ConfigError subclasses ValueError so pre-registry call sites
        # (and tests) catching ValueError keep working.
        with pytest.raises(ValueError):
            resolve("replacement", "plru")

    def test_validate_choice_names_config_field(self):
        with pytest.raises(ConfigError) as exc:
            validate_choice("replacement", "plru", "llc.replacement")
        assert exc.value.field == "llc.replacement"
        assert "llc.replacement" in str(exc.value)

    def test_config_rejects_unknown_component_at_construction(self):
        with pytest.raises(ConfigError) as exc:
            CacheConfig(size_bytes=1024, assoc=2, replacement="plru")
        assert exc.value.choices == ("fifo", "lru", "random")


class TestRegistration:
    def test_custom_policy_without_editing_sim(self):
        """Register an MRU policy from the test, run a cache with it."""

        @register("replacement", "mru-test")
        class MruPolicy:
            promote_on_hit = True

            def __init__(self, config):
                pass

            def select_victim(self, cache_set):
                return next(reversed(cache_set))

            def reset(self):
                pass

        try:
            config = CacheConfig(
                size_bytes=2 * 64, assoc=2, line_bytes=64,
                replacement="mru-test",
            )
            cache = SetAssocCache(config)
            cache.fill(0)
            cache.fill(1)
            # MRU evicts the most recently inserted line (1), not LRU's 0.
            assert cache.fill(2) == (1, False)
        finally:
            unregister("replacement", "mru-test")
        with pytest.raises(ConfigError):
            resolve("replacement", "mru-test")

    def test_reregistering_same_object_is_noop(self):
        factory = resolve("scheduler", "earliest")
        assert register("scheduler", "earliest")(factory) is factory

    def test_shadowing_taken_name_rejected(self):
        class Impostor:
            def pick(self, cores):
                return None, 0.0, 0.0

        with pytest.raises(ConfigError, match="already registered"):
            register("scheduler", "earliest")(Impostor)
        # The original registration is intact.
        assert not isinstance(resolve("scheduler", "earliest"), Impostor)

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ConfigError, match="not registered"):
            unregister("replacement", "never-was")

    def test_protocols_are_structural(self):
        class Anon:
            def pick(self, cores):
                return None, 0.0, 0.0

        assert isinstance(Anon(), Scheduler)
