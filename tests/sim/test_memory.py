"""DRAM model: page policy, bus/bank occupancy, interference attribution."""

from __future__ import annotations

from repro.config import DramConfig
from repro.sim.memory import (
    MainMemory,
    PAGE_CONFLICT,
    PAGE_EMPTY,
    PAGE_HIT,
    _SharedResource,
)

CFG = DramConfig()  # 8 banks, 4KB pages, bus 16, cas 40, rcd 60, rp 60


class TestSharedResource:
    def test_free_resource_no_wait(self):
        res = _SharedResource()
        start, wait_other = res.reserve(100, 10, core_id=0)
        assert start == 100
        assert wait_other == 0

    def test_queued_wait_attributed_to_other_core(self):
        res = _SharedResource()
        res.reserve(100, 50, core_id=0)
        start, wait_other = res.reserve(100, 10, core_id=1)
        assert start == 150
        assert wait_other == 50

    def test_own_queueing_not_attributed(self):
        res = _SharedResource()
        res.reserve(100, 50, core_id=1)
        start, wait_other = res.reserve(100, 10, core_id=1)
        assert start == 150
        assert wait_other == 0

    def test_mixed_queue_splits_attribution(self):
        res = _SharedResource()
        res.reserve(100, 30, core_id=0)   # 100-130 other
        res.reserve(100, 20, core_id=1)   # 130-150 own
        start, wait_other = res.reserve(100, 10, core_id=1)
        assert start == 150
        assert wait_other == 30

    def test_history_pruned(self):
        res = _SharedResource()
        for t in range(0, 1000, 100):
            res.reserve(t, 10, core_id=0)
        assert len(res._reservations) < 5


class TestPagePolicy:
    def test_first_access_empty_bank(self):
        memory = MainMemory(CFG)
        result = memory.access(0x1000, core_id=0, t_request=0)
        assert result.page_outcome == PAGE_EMPTY
        assert result.prev_open_page is None
        assert result.latency == CFG.page_empty_cycles + CFG.bus_cycles

    def test_second_access_same_page_hits(self):
        memory = MainMemory(CFG)
        memory.access(0x1000, 0, 0)
        result = memory.access(0x1040, 0, 1000)
        assert result.page_outcome == PAGE_HIT
        assert result.latency == CFG.page_hit_cycles + CFG.bus_cycles
        assert result.page_extra_cycles == 0

    def test_different_page_same_bank_conflicts(self):
        memory = MainMemory(CFG)
        memory.access(0x1000, 0, 0)
        # +8 pages -> same bank, different page
        result = memory.access(0x1000 + 8 * 4096, 1, 1000)
        assert result.page_outcome == PAGE_CONFLICT
        assert result.prev_opener == 0
        assert result.page_extra_cycles == CFG.conflict_extra_cycles

    def test_different_banks_do_not_conflict(self):
        memory = MainMemory(CFG)
        memory.access(0x0000, 0, 0)
        result = memory.access(0x1000, 1, 1000)  # next page, next bank
        assert result.page_outcome == PAGE_EMPTY

    def test_prev_opener_reported(self):
        memory = MainMemory(CFG)
        memory.access(0x1000, 3, 0)
        result = memory.access(0x1000 + 8 * 4096, 1, 1000)
        assert result.prev_opener == 3
        assert result.prev_open_page == 0x1000 >> 12


class TestContention:
    def test_bank_wait_from_other_core(self):
        memory = MainMemory(CFG)
        memory.access(0x1000, 0, 0)
        result = memory.access(0x1000 + 8 * 4096, 1, 0)
        assert result.bank_wait_other > 0

    def test_bus_wait_from_other_core(self):
        memory = MainMemory(CFG)
        # Different banks (no bank conflict) but one shared bus.
        memory.access(0x0000, 0, 0)
        result = memory.access(0x1000, 1, 0)
        # bank service concurrent; bus transfer serialized
        assert result.bus_wait_other > 0

    def test_unloaded_access_no_interference(self):
        memory = MainMemory(CFG)
        result = memory.access(0x2000, 0, 0)
        assert result.bus_wait_other == 0
        assert result.bank_wait_other == 0


class TestWriteback:
    def test_writeback_counts_and_occupies(self):
        memory = MainMemory(CFG)
        memory.writeback(0x1000, 0, 0)
        assert memory.n_writebacks == 1
        # a demand access right after must wait behind the writeback
        result = memory.access(0x1000 + 8 * 4096, 1, 0)
        assert result.bank_wait_other > 0

    def test_writeback_updates_open_page(self):
        memory = MainMemory(CFG)
        memory.writeback(0x1000, 0, 0)
        result = memory.access(0x1040, 0, 10_000)
        assert result.page_outcome == PAGE_HIT


class TestCounters:
    def test_hit_and_conflict_counters(self):
        memory = MainMemory(CFG)
        memory.access(0x1000, 0, 0)
        memory.access(0x1040, 0, 1000)            # page hit
        memory.access(0x1000 + 8 * 4096, 0, 2000)  # conflict
        assert memory.n_accesses == 3
        assert memory.n_page_hits == 1
        assert memory.n_page_conflicts == 1
