"""Way-partitioned LLC mechanics."""

from __future__ import annotations

import pytest

from repro.config import KB, CacheConfig, MachineConfig
from repro.errors import ConfigError
from repro.sim.partition import WayPartitionedCache, equal_quotas

CFG = CacheConfig(size_bytes=8 * KB, assoc=4, line_bytes=64)  # 32 sets


def make(quotas=(2, 2)) -> WayPartitionedCache:
    return WayPartitionedCache(CFG, quotas)


def lines(set_index, k, n_sets=32):
    return [set_index + i * n_sets for i in range(k)]


class TestQuotaEnforcement:
    def test_fill_within_quota_no_eviction(self):
        cache = make()
        a, b = lines(0, 2)
        assert cache.fill(a, owner=0) is None
        assert cache.fill(b, owner=0) is None

    def test_over_quota_evicts_own_lru(self):
        cache = make()
        a, b, c = lines(0, 3)
        cache.fill(a, owner=0)
        cache.fill(b, owner=0)
        victim = cache.fill(c, owner=0)
        assert victim == (a, False)

    def test_never_evicts_other_core_within_quota(self):
        cache = make()
        a, b, c, d, e = lines(0, 5)
        cache.fill(a, owner=1)   # core 1's protected line
        cache.fill(b, owner=0)
        cache.fill(c, owner=0)
        cache.fill(d, owner=0)   # evicts b (core 0's own LRU)
        cache.fill(e, owner=0)   # evicts c
        assert cache.contains(a)
        assert not cache.contains(b)

    def test_hit_is_shared(self):
        """Any core hits on any resident line (the data is shared)."""
        cache = make()
        line = lines(3, 1)[0]
        cache.fill(line, owner=0)
        assert cache.lookup(line)

    def test_owner_tracked(self):
        cache = make()
        line = lines(1, 1)[0]
        cache.fill(line, owner=1)
        assert cache.owner_of(line) == 1
        assert cache.owned_in_set(1, 1) == 1
        assert cache.owned_in_set(1, 0) == 0

    def test_refill_transfers_ownership(self):
        cache = make()
        line = lines(0, 1)[0]
        cache.fill(line, owner=0)
        cache.fill(line, owner=1)
        assert cache.owner_of(line) == 1

    def test_invalidate_releases_quota(self):
        cache = make()
        a, b, c = lines(0, 3)
        cache.fill(a, owner=0)
        cache.fill(b, owner=0)
        cache.invalidate(a)
        assert cache.fill(c, owner=0) is None  # quota freed


class TestQuotaValidation:
    def test_quotas_exceeding_assoc_rejected(self):
        with pytest.raises(ConfigError):
            WayPartitionedCache(CFG, (3, 3))

    def test_zero_quota_rejected(self):
        with pytest.raises(ConfigError):
            WayPartitionedCache(CFG, (0, 4))

    def test_equal_quotas(self):
        assert equal_quotas(16, 4) == (4, 4, 4, 4)
        assert equal_quotas(16, 3) == (6, 5, 5)
        with pytest.raises(ConfigError):
            equal_quotas(4, 8)


class TestMachineIntegration:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=4, llc_quotas=(4, 4, 4))  # wrong length
        with pytest.raises(ValueError):
            MachineConfig(n_cores=2, llc_quotas=(10, 10))  # > 16 ways

    def test_with_llc_quotas(self):
        machine = MachineConfig(n_cores=4).with_llc_quotas((1, 5, 5, 5))
        assert machine.llc_quotas == (1, 5, 5, 5)

    def test_chip_uses_partitioned_cache(self):
        from repro.sim.cmp import Chip

        machine = MachineConfig(n_cores=4).with_llc_quotas((4, 4, 4, 4))
        chip = Chip(machine)
        assert isinstance(chip.llc, WayPartitionedCache)

    def test_partitioned_run_completes(self):
        from repro.sim.engine import simulate
        from tests.conftest import lock_step_program

        machine = MachineConfig(n_cores=4).with_llc_quotas((4, 4, 4, 4))
        result = simulate(machine, lock_step_program(4, iters=10))
        assert result.total_cycles > 0
