"""Differential suite: the vectorized engine against the reference.

The vectorized backend is only allowed to be *faster* — never
different.  Every test here pins one slice of that equality contract:

* the six golden speedup stacks are byte-identical to the checked-in
  reference fixtures when run under ``--engine vectorized``;
* random small programs (hypothesis) produce identical full state
  trees and accountant snapshots under both backends;
* injected faults degrade both backends identically;
* a checkpoint saved by either backend resumes under the other and
  converges on the reference run's exact final state (portability in
  both directions);
* the watchdog — livelock detection and the ``EngineSnapshot``
  post-mortem — fires at the same cycle with the same snapshot.
"""

from __future__ import annotations

import json

import pytest

pytest.importorskip("numpy", reason="the vectorized engine needs numpy")

from hypothesis import given, settings

from repro.accounting.accountant import CycleAccountant
from repro.checkpoint import (
    CheckpointHook,
    CheckpointPolicy,
    cell_descriptor,
    resume_simulation,
)
from repro.config import MachineConfig, RunConfig
from repro.errors import ConfigError, LivelockError, SimulationError
from repro.experiments.runner import run_experiment
from repro.robustness.faults import make_fault
from repro.sim.engine import Simulation
from repro.sim.engine_vec import VectorizedSimulation
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name

from tests.conftest import lock_step_program
from tests.golden.test_golden_stacks import (
    GOLDEN_CELLS,
    MAX_CYCLES,
    SCALE,
    _fixture_path,
    diff_stacks,
    stack_to_dict,
)
from tests.sim.test_watchdog import livelock_program
from tests.test_property_engine import programs

ENGINE_CLASSES = {
    "reference": Simulation,
    "vectorized": VectorizedSimulation,
}


def canon(state: dict) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# golden stacks
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,n_threads", GOLDEN_CELLS,
    ids=[f"{n}:{t}" for n, t in GOLDEN_CELLS],
)
def test_golden_stack_identical_under_vectorized(name, n_threads):
    """The reference-generated golden fixtures must hold byte-for-byte
    when the whole experiment runs under the vectorized backend."""
    path = _fixture_path(name, n_threads)
    assert path.exists(), f"missing golden fixture {path}"
    spec = by_name(name)
    machine = MachineConfig(n_cores=n_threads)
    result = run_experiment(
        spec.full_name, machine,
        build_program(spec, n_threads, scale=SCALE),
        build_program(spec, 1, scale=SCALE),
        max_cycles=MAX_CYCLES,
        on_timeout="truncate",
        engine="vectorized",
    )
    expected = json.loads(path.read_text())
    diff = diff_stacks(expected, stack_to_dict(result.stack))
    assert not diff, (
        f"{name}:{n_threads} diverged from the reference fixture under "
        f"the vectorized engine:\n  " + "\n  ".join(diff)
    )


def test_full_state_tree_parity_on_suite_cell():
    """Not just the stack: the complete serialized state tree (caches,
    directory, ATDs, detectors, threads, sync) matches exactly."""
    spec = by_name("cholesky")
    machine = MachineConfig(n_cores=4)
    states = {}
    for engine, cls in ENGINE_CLASSES.items():
        accountant = CycleAccountant(machine)
        sim = cls(machine, build_program(spec, 4, scale=SCALE), accountant)
        sim.run(max_cycles=MAX_CYCLES, on_timeout="truncate")
        states[engine] = canon(sim.state_dict())
    assert states["reference"] == states["vectorized"]


# ----------------------------------------------------------------------
# property-based differential fuzzing
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(programs())
def test_random_programs_state_and_accountant_parity(case):
    """Hypothesis programs (locks, barriers, stores, shared lines) land
    on identical engine state and accountant counters under both
    backends — including the spin-horizon fast path inside contended
    critical sections."""
    factory, n_threads = case
    machine = MachineConfig(n_cores=n_threads)
    finals = {}
    for engine, cls in ENGINE_CLASSES.items():
        accountant = CycleAccountant(machine)
        sim = cls(machine, factory(), accountant)
        result = sim.run(max_cycles=10**8)
        finals[engine] = (
            result.total_cycles,
            result.total_instrs,
            canon(sim.state_dict()),
            accountant.snapshot(),
        )
    assert finals["reference"] == finals["vectorized"]


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["mem-spike", "barrier-skew"])
def test_injected_fault_degrades_both_backends_identically(kind):
    machine = MachineConfig(n_cores=4)
    spec = by_name("cholesky")
    finals = {}
    for engine, cls in ENGINE_CLASSES.items():
        program = build_program(spec, 4, scale=0.05)
        # seeded injector: same fault instance parameters on both sides
        program, faulted = make_fault(kind, seed=7)(program, machine)
        accountant = CycleAccountant(faulted)
        sim = cls(faulted, program, accountant)
        result = sim.run(max_cycles=2_000_000, on_timeout="truncate")
        finals[engine] = (result.total_cycles, canon(sim.state_dict()))
    assert finals["reference"] == finals["vectorized"]


def test_deadlock_fault_post_mortem_parity():
    """A deadlock fault raises on both backends with the same
    EngineSnapshot post-mortem (quarantine parity)."""
    machine = MachineConfig(n_cores=4)
    spec = by_name("cholesky")
    snapshots = {}
    for engine, cls in ENGINE_CLASSES.items():
        program = build_program(spec, 4, scale=0.05)
        program, faulted = make_fault("deadlock", seed=3)(program, machine)
        sim = cls(faulted, program, CycleAccountant(faulted))
        with pytest.raises(SimulationError) as err:
            sim.run(max_cycles=2_000_000)
        assert err.value.snapshot is not None
        snapshots[engine] = err.value.snapshot.to_dict()
    assert snapshots["reference"] == snapshots["vectorized"]


# ----------------------------------------------------------------------
# cross-backend checkpoint portability
# ----------------------------------------------------------------------

CKPT_BENCH = "cholesky"
CKPT_N = 4
CKPT_SCALE = 0.05
CKPT_MAX_CYCLES = 2_000_000
CKPT_EVERY = 3_000  # the scale-0.05 cell runs ~6.4k cycles -> 2 saves


@pytest.mark.parametrize(
    "save_engine,resume_engine",
    [("reference", "vectorized"), ("vectorized", "reference")],
)
def test_checkpoint_portability_across_backends(
    tmp_path, save_engine, resume_engine
):
    """A mid-run checkpoint written by one backend resumes under the
    other and converges on the uninterrupted run's exact final state —
    the descriptor deliberately does not pin the saving engine."""
    machine = MachineConfig(n_cores=CKPT_N)
    spec = by_name(CKPT_BENCH)

    clean_sim = Simulation(
        machine, build_program(spec, CKPT_N, scale=CKPT_SCALE),
        CycleAccountant(machine),
    )
    clean_result = clean_sim.run(
        max_cycles=CKPT_MAX_CYCLES, on_timeout="truncate"
    )
    clean_state = canon(clean_sim.state_dict())

    descriptor = cell_descriptor(
        machine, CKPT_BENCH, CKPT_N, CKPT_SCALE,
        max_cycles=CKPT_MAX_CYCLES,
    )
    hook = CheckpointHook(
        tmp_path / "cell.ckpt", descriptor,
        CheckpointPolicy(every_cycles=CKPT_EVERY),
    )
    saver = ENGINE_CLASSES[save_engine](
        machine, build_program(spec, CKPT_N, scale=CKPT_SCALE),
        CycleAccountant(machine),
    )
    saver.run(
        max_cycles=CKPT_MAX_CYCLES, on_timeout="truncate", checkpoint=hook,
    )
    assert hook.n_saves >= 1
    # an armed hook never perturbs the run, whichever backend observes
    assert canon(saver.state_dict()) == clean_state

    resumed_sim, header = resume_simulation(
        hook.path, expected_descriptor=descriptor, engine=resume_engine,
    )
    assert type(resumed_sim) is ENGINE_CLASSES[resume_engine]
    assert 0 < header["cycle"] < clean_result.total_cycles
    resumed_result = resumed_sim.run(
        max_cycles=CKPT_MAX_CYCLES, on_timeout="truncate"
    )
    assert canon(resumed_sim.state_dict()) == clean_state
    assert resumed_result.total_cycles == clean_result.total_cycles
    assert (
        resumed_result.thread_end_times == clean_result.thread_end_times
    )


# ----------------------------------------------------------------------
# watchdog / quarantine parity
# ----------------------------------------------------------------------


def test_livelock_detection_parity():
    """The seeded livelock trace trips the progress watchdog at the
    same cycle with the same post-mortem under both backends."""
    machine = MachineConfig(n_cores=2)
    errors = {}
    for engine, cls in ENGINE_CLASSES.items():
        sim = cls(machine, livelock_program(), CycleAccountant(machine))
        with pytest.raises(LivelockError) as err:
            sim.run(max_cycles=10**7, livelock_window=50_000)
        assert err.value.snapshot is not None
        errors[engine] = err.value
    ref, vec = errors["reference"], errors["vectorized"]
    assert ref.snapshot.cycle == vec.snapshot.cycle
    assert ref.snapshot.to_dict() == vec.snapshot.to_dict()
    assert str(ref) == str(vec)


def test_livelock_truncation_parity():
    machine = MachineConfig(n_cores=2)
    finals = {}
    for engine, cls in ENGINE_CLASSES.items():
        sim = cls(machine, livelock_program(), CycleAccountant(machine))
        result = sim.run(
            max_cycles=10**7, livelock_window=50_000, on_timeout="truncate",
        )
        assert result.truncated
        finals[engine] = (
            result.truncation_reason,
            result.total_cycles,
            canon(sim.state_dict()),
        )
    assert finals["reference"] == finals["vectorized"]


def test_max_cycles_post_mortem_parity(machine4):
    snapshots = {}
    for engine, cls in ENGINE_CLASSES.items():
        sim = cls(machine4, lock_step_program(4, iters=200))
        with pytest.raises(SimulationError) as err:
            sim.run(max_cycles=5_000)
        assert err.value.snapshot is not None
        snapshots[engine] = err.value.snapshot.to_dict()
    assert snapshots["reference"] == snapshots["vectorized"]


# ----------------------------------------------------------------------
# registration, config plumbing, and the numpy guard
# ----------------------------------------------------------------------


def test_engine_component_kind_registered():
    from repro.components.registry import available, resolve

    assert set(available("engine")) >= {"reference", "vectorized"}
    machine = MachineConfig(n_cores=2)
    program = build_program(by_name("blackscholes_small"), 2, scale=0.05)
    assert type(resolve("engine", "reference")(machine, program)) is (
        Simulation
    )
    program = build_program(by_name("blackscholes_small"), 2, scale=0.05)
    assert type(resolve("engine", "vectorized")(machine, program)) is (
        VectorizedSimulation
    )


def test_run_config_validates_engine_choice():
    assert RunConfig(engine="vectorized").engine == "vectorized"
    with pytest.raises(ConfigError) as err:
        RunConfig(engine="bogus")
    assert "engine" in str(err.value)


def test_missing_numpy_raises_config_error_naming_extra(monkeypatch):
    import repro.sim.engine_vec as engine_vec

    monkeypatch.setattr(engine_vec, "_np", None)
    machine = MachineConfig(n_cores=2)
    program = build_program(by_name("blackscholes_small"), 2, scale=0.05)
    with pytest.raises(ConfigError) as err:
        VectorizedSimulation(machine, program, CycleAccountant(machine))
    message = str(err.value)
    assert "numpy" in message
    assert "vectorized" in message  # names the extra to install
