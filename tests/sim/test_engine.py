"""Execution engine: scheduling, determinism, sync, oversubscription."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, SchedConfig
from repro.errors import DeadlockError, SimulationError
from repro.osmodel.thread import FINISHED
from repro.sim.engine import Simulation, simulate
from repro.workloads.program import (
    BarrierWait,
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
)

from tests.conftest import compute_only_program, lock_step_program


class TestBasicExecution:
    def test_all_threads_finish(self, machine4):
        result = simulate(machine4, compute_only_program(4))
        assert all(t.state == FINISHED for t in result.threads)
        assert result.total_cycles > 0

    def test_compute_time_matches_width(self, machine1):
        result = simulate(machine1, compute_only_program(1, 4000))
        dispatch = (
            machine1.sched.context_switch_cycles
            + machine1.sched.overhead_per_core_cycles
        )
        expected = 4000 // machine1.core.dispatch_width + dispatch
        assert result.total_cycles == expected

    def test_equal_threads_finish_together(self, machine4):
        result = simulate(machine4, compute_only_program(4))
        ends = result.thread_end_times
        assert max(ends) - min(ends) < 100

    def test_total_instrs_counted(self, machine4):
        result = simulate(machine4, compute_only_program(4, 2000))
        assert result.total_instrs == 4 * 2000

    def test_determinism(self, machine4):
        a = simulate(machine4, lock_step_program(4))
        b = simulate(machine4, lock_step_program(4))
        assert a.total_cycles == b.total_cycles
        assert a.thread_end_times == b.thread_end_times
        assert a.total_instrs == b.total_instrs


class TestLocks:
    def test_mutual_exclusion_bookkeeping(self, machine4):
        result = simulate(machine4, lock_step_program(4))
        lock = result.sync.locks[0]
        assert lock.holder is None
        assert lock.n_acquires == 4 * 30

    def test_contention_produces_spin_or_yield(self, machine4):
        result = simulate(machine4, lock_step_program(4, iters=60))
        total_spin = sum(t.gt_spin_cycles for t in result.threads)
        assert total_spin > 0

    def test_release_unheld_lock_raises(self, machine4):
        def bad():
            yield LockRelease(0)

        program = Program("bad", [bad()])
        with pytest.raises(SimulationError):
            simulate(machine4, program)

    def test_single_thread_locks_uncontended(self, machine1):
        result = simulate(machine1, lock_step_program(1))
        thread = result.threads[0]
        assert thread.gt_spin_cycles == 0
        assert thread.n_yields == 0


class TestFifoHandoff:
    def _contended(self, fifo: bool):
        def body(tid):
            for __ in range(12):
                yield LockAcquire(0)
                yield Compute(800)
                yield LockRelease(0)
                yield Compute(100)

        return Program("ff", [body(t) for t in range(4)],
                       lock_fifo_handoff=fifo)

    def test_fifo_runs_to_completion(self, machine4):
        result = simulate(machine4, self._contended(True))
        assert result.sync.locks[0].n_acquires == 48

    def test_fifo_flag_propagates(self, machine4):
        result = simulate(machine4, self._contended(True))
        assert result.sync.locks[0].fifo_handoff
        result = simulate(machine4, self._contended(False))
        assert not result.sync.locks[0].fifo_handoff


class TestBarriers:
    def test_barrier_synchronizes(self, machine4):
        order = []

        def body(tid):
            yield Compute(100 * (tid + 1))
            yield BarrierWait(0)
            order.append(tid)
            yield Compute(10)

        result = simulate(machine4, Program("b", [body(t) for t in range(4)]))
        assert sorted(order) == [0, 1, 2, 3]
        assert result.sync.barriers[0].n_episodes == 1

    def test_imbalanced_arrival_yields(self, machine4):
        def body(tid):
            # thread 3 arrives very late; the others must wait
            yield Compute(100 if tid < 3 else 60_000)
            yield BarrierWait(0)

        result = simulate(machine4, Program("b", [body(t) for t in range(4)]))
        early = [t for t in result.threads if t.tid < 3]
        assert all(t.n_yields >= 1 for t in early)
        assert all(t.gt_yield_cycles > 10_000 for t in early)

    def test_reusable_barrier(self, machine4):
        def body(tid):
            for phase in range(3):
                yield Compute(50)
                yield BarrierWait(0)

        result = simulate(machine4, Program("b", [body(t) for t in range(4)]))
        assert result.sync.barriers[0].n_episodes == 3


class TestImbalance:
    def test_imbalance_cycles(self, machine4):
        def body(tid):
            yield Compute(1000 if tid else 20_000)

        result = simulate(machine4, Program("i", [body(t) for t in range(4)]))
        imbalance = result.imbalance_cycles
        assert imbalance[0] == 0  # slowest thread
        assert all(v > 0 for v in imbalance[1:])
        assert max(result.thread_end_times) == result.total_cycles


class TestOversubscription:
    def test_more_threads_than_cores(self):
        machine = MachineConfig(n_cores=2)
        result = simulate(machine, compute_only_program(8, 4000))
        assert all(t.state == FINISHED for t in result.threads)
        # 8 threads of work on 2 cores takes ~4x one thread's time
        solo = simulate(MachineConfig(n_cores=1), compute_only_program(1, 4000))
        assert result.total_cycles > 3 * solo.total_cycles

    def test_timeslice_preemption(self):
        sched = SchedConfig(timeslice_cycles=2_000)
        machine = MachineConfig(n_cores=1, sched=sched)
        result = simulate(machine, compute_only_program(2, 20_000))
        # both threads must finish despite sharing one core
        assert all(t.state == FINISHED for t in result.threads)
        spread = abs(result.thread_end_times[0] - result.thread_end_times[1])
        # interleaved execution: they end within a few timeslices
        assert spread < 4 * sched.timeslice_cycles + 10_000

    def test_oversubscribed_lock_program(self):
        machine = MachineConfig(
            n_cores=2, sched=SchedConfig(timeslice_cycles=5_000)
        )
        result = simulate(machine, lock_step_program(6, iters=10))
        assert result.sync.locks[0].n_acquires == 60


class TestSafetyRails:
    def test_max_cycles_guard(self, machine4):
        with pytest.raises(SimulationError):
            simulate(machine4, compute_only_program(4, 10**6), max_cycles=10)

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program("empty", [])

    def test_warmup_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Program("w", [iter(())], warmup=[[], []])
