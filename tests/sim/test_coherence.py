"""Coherence directory: sharers, invalidation, value versioning."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.coherence import CoherenceDirectory


class TestSharers:
    def test_add_and_remove(self):
        directory = CoherenceDirectory(4)
        directory.add_sharer(10, 0)
        directory.add_sharer(10, 2)
        assert directory.sharers_of(10) == frozenset({0, 2})
        directory.remove_sharer(10, 0)
        assert directory.sharers_of(10) == frozenset({2})
        directory.remove_sharer(10, 2)
        assert directory.sharers_of(10) == frozenset()

    def test_remove_unknown_is_noop(self):
        directory = CoherenceDirectory(2)
        directory.remove_sharer(99, 1)
        assert directory.sharers_of(99) == frozenset()


class TestWriteInvalidate:
    def test_invalidates_other_cores_only(self):
        directory = CoherenceDirectory(4)
        for core in (0, 1, 3):
            directory.add_sharer(7, core)
        victims = directory.write_invalidate(7, 1)
        assert sorted(victims) == [0, 3]
        assert directory.sharers_of(7) == frozenset({1})
        assert directory.n_invalidations == 2
        assert directory.n_upgrade_writes == 1

    def test_writer_not_sharing_drops_line(self):
        directory = CoherenceDirectory(4)
        directory.add_sharer(7, 0)
        victims = directory.write_invalidate(7, 2)
        assert victims == [0]
        assert directory.sharers_of(7) == frozenset()

    def test_sole_owner_write_is_free(self):
        directory = CoherenceDirectory(4)
        directory.add_sharer(7, 2)
        assert directory.write_invalidate(7, 2) == []
        assert directory.n_invalidations == 0

    def test_uncached_line_write(self):
        directory = CoherenceDirectory(4)
        assert directory.write_invalidate(123, 0) == []


class TestCoherencyMissDetection:
    def test_invalidation_leaves_invalid_tag(self):
        directory = CoherenceDirectory(2)
        directory.add_sharer(5, 0)
        directory.write_invalidate(5, 1)
        assert directory.consume_coherency_miss(5, 0)
        # consumed: second probe is a plain miss
        assert not directory.consume_coherency_miss(5, 0)

    def test_refill_clears_invalid_tag(self):
        directory = CoherenceDirectory(2)
        directory.add_sharer(5, 0)
        directory.write_invalidate(5, 1)
        directory.add_sharer(5, 0)  # re-fetched the line
        assert not directory.consume_coherency_miss(5, 0)

    def test_plain_eviction_is_not_coherency_miss(self):
        directory = CoherenceDirectory(2)
        directory.add_sharer(5, 0)
        directory.remove_sharer(5, 0)
        assert not directory.consume_coherency_miss(5, 0)

    def test_llc_drop_keeps_nonsharer_invalid_tags(self):
        """Dropping a line clears tracking for its current sharers, but a
        core whose copy was *invalidated* earlier still holds the stale
        tag in its own L1 tag array — the marker survives until that
        core refetches or replaces the line."""
        directory = CoherenceDirectory(2)
        directory.add_sharer(5, 0)
        directory.write_invalidate(5, 1)
        directory.add_sharer(5, 1)
        directory.drop_line(5)
        assert directory.consume_coherency_miss(5, 0)


class TestDropLine:
    def test_returns_all_sharers(self):
        directory = CoherenceDirectory(4)
        directory.add_sharer(9, 1)
        directory.add_sharer(9, 3)
        assert sorted(directory.drop_line(9)) == [1, 3]
        assert directory.sharers_of(9) == frozenset()

    def test_unknown_line(self):
        directory = CoherenceDirectory(4)
        assert directory.drop_line(404) == []


class TestValueVersioning:
    def test_unwritten_word_reads_initial(self):
        directory = CoherenceDirectory(2)
        assert directory.load_value(0x1000) == (-1, -1)

    def test_store_bumps_version_and_writer(self):
        directory = CoherenceDirectory(2)
        directory.record_store(0x1000, 1)
        assert directory.load_value(0x1000) == (1, 1)
        directory.record_store(0x1000, 0)
        assert directory.load_value(0x1000) == (2, 0)

    def test_word_granularity(self):
        directory = CoherenceDirectory(2)
        directory.record_store(0x1000, 0)
        # same 8-byte word
        assert directory.load_value(0x1007) == (1, 0)
        # next word untouched
        assert directory.load_value(0x1008) == (-1, -1)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 3)),
                    max_size=100))
    def test_version_counts_stores_per_word(self, stores):
        directory = CoherenceDirectory(4)
        expected: dict[int, int] = {}
        for word, core in stores:
            directory.record_store(word * 8, core)
            expected[word * 8] = expected.get(word * 8, 0) + 1
        for word_addr, count in expected.items():
            version, __ = directory.load_value(word_addr)
            assert version == count
