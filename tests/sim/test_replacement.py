"""Cache replacement policies: LRU vs FIFO vs random."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig
from repro.sim.cache import SetAssocCache


def make(policy: str, n_sets=4, assoc=2) -> SetAssocCache:
    return SetAssocCache(
        CacheConfig(
            size_bytes=n_sets * assoc * 64, assoc=assoc, line_bytes=64,
            replacement=policy,
        )
    )


def lines(cache, set_index, k):
    return [set_index + i * cache.geometry.n_sets for i in range(k)]


class TestFifo:
    def test_hit_does_not_promote(self):
        cache = make("fifo")
        a, b, c = lines(cache, 1, 3)
        cache.fill(a)
        cache.fill(b)
        cache.lookup(a)  # would save a under LRU; FIFO ignores
        victim = cache.fill(c)
        assert victim == (a, False)

    def test_insertion_order_eviction(self):
        cache = make("fifo", assoc=3)
        a, b, c, d = lines(cache, 0, 4)
        for line in (a, b, c):
            cache.fill(line)
        for __ in range(5):
            cache.lookup(c)
            cache.lookup(b)
        assert cache.fill(d) == (a, False)


class TestRandom:
    def test_deterministic_across_instances(self):
        results = []
        for __ in range(2):
            cache = make("random", n_sets=2, assoc=4)
            victims = []
            for line in lines(cache, 0, 12):
                victim = cache.fill(line)
                if victim:
                    victims.append(victim[0])
            results.append(victims)
        assert results[0] == results[1]

    def test_victim_from_same_set(self):
        cache = make("random", n_sets=4, assoc=2)
        for line in lines(cache, 3, 10):
            victim = cache.fill(line)
            if victim:
                assert victim[0] % 4 == 3

    def test_capacity_respected(self):
        cache = make("random", n_sets=2, assoc=4)
        for line in lines(cache, 1, 50):
            cache.fill(line)
        assert cache.occupancy() <= 8


class TestPolicyComparison:
    def test_lru_beats_fifo_on_reuse_pattern(self):
        """A pattern with a hot reused line: LRU keeps it, FIFO does not."""
        def run(policy):
            cache = make(policy, n_sets=1, assoc=2)
            hot, *cold = lines(cache, 0, 6)
            cache.fill(hot)
            hits = 0
            for line in cold:
                if cache.lookup(hot):
                    hits += 1
                cache.fill(line)
            return hits

        assert run("lru") > run("fifo")

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, assoc=2, replacement="plru")
