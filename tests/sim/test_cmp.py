"""Chip memory hierarchy: hit/miss paths, MLP window, C2C, warmup."""

from __future__ import annotations

import pytest

from repro.accounting.accountant import CycleAccountant
from repro.config import KB, CacheConfig, MachineConfig
from repro.sim.cmp import Chip, MSHR_LIMIT


@pytest.fixture
def machine() -> MachineConfig:
    return MachineConfig(n_cores=2)


@pytest.fixture
def chip(machine) -> Chip:
    return Chip(machine)


LINE = 64


class TestLoadPath:
    def test_l1_hit_after_fill(self, chip):
        chip.load(0, 0x1000, 0, 0)
        stall = chip.drain(0, 10_000)
        assert chip.load(0, 0x1000, 0, 20_000) == 0  # L1 hit, hidden
        assert chip.stats[0].l1_hits == 1

    def test_dependent_l1_hit_pays_latency(self, chip, machine):
        chip.load(0, 0x1000, 0, 0)
        chip.drain(0, 10_000)
        stall = chip.load(0, 0x1000, 0, 20_000, dependent=True)
        assert stall == machine.l1d.hit_latency

    def test_blocking_miss_pays_full_latency(self, chip, machine):
        stall = chip.load(0, 0x1000, 0, 0, overlappable=False)
        # l1 + llc lookup + dram (page empty + bus)
        expected_min = (
            machine.l1d.hit_latency
            + machine.llc.hit_latency
            + machine.dram.page_empty_cycles
            + machine.dram.bus_cycles
        )
        assert stall >= expected_min

    def test_overlappable_miss_defers_stall(self, chip):
        assert chip.load(0, 0x1000, 0, 0, overlappable=True) == 0
        assert chip.has_outstanding(0)
        assert chip.drain(0, 0) > 0
        assert not chip.has_outstanding(0)

    def test_llc_hit_from_other_core_fill(self, chip):
        # Core 0 brings the line to the LLC; core 0's L1 holds it too,
        # so core 1 is served by LLC/C2C, not DRAM.
        chip.load(0, 0x1000, 0, 0, overlappable=False)
        before = chip.stats[1].dram_accesses
        chip.load(1, 0x1000, 0, 50_000, overlappable=False)
        assert chip.stats[1].dram_accesses == before
        assert chip.stats[1].llc_hits == 1


class TestMlpWindow:
    def test_overlapped_misses_share_penalty(self, chip):
        """Two overlappable misses drain in less than twice one miss."""
        solo_chip = Chip(MachineConfig(n_cores=2))
        solo = solo_chip.load(0, 0x10_0000, 0, 0, overlappable=False)

        chip.load(0, 0x20_0000, 0, 0, overlappable=True)
        chip.load(0, 0x20_1000, 0, 0, overlappable=True)  # next page -> other bank
        combined = chip.drain(0, 0)
        assert combined < 2 * solo

    def test_rob_fill_forces_drain(self, chip, machine):
        chip.load(0, 0x10_0000, 0, 0, overlappable=True)
        stall = chip.compute(0, machine.core.rob_size, 0)
        assert stall > 0
        assert not chip.has_outstanding(0)

    def test_compute_below_rob_keeps_outstanding(self, chip, machine):
        chip.load(0, 0x10_0000, 0, 0, overlappable=True)
        assert chip.compute(0, machine.core.rob_size // 2, 0) == 0
        assert chip.has_outstanding(0)

    def test_mshr_limit_forces_drain(self, chip):
        for k in range(MSHR_LIMIT + 1):
            chip.load(0, 0x10_0000 + k * 0x2_0000, 0, 0, overlappable=True)
        # the (MSHR+1)-th miss drained the previous window
        assert len(chip._mem_state[0].outstanding) == 1

    def test_dependent_load_drains_first(self, chip):
        chip.load(0, 0x10_0000, 0, 0, overlappable=True)
        chip.load(0, 0x20_0000, 0, 0, dependent=True, overlappable=False)
        assert not chip.has_outstanding(0)

    def test_drain_after_time_passed_is_free(self, chip):
        chip.load(0, 0x10_0000, 0, 0, overlappable=True)
        assert chip.drain(0, 1_000_000) == 0


class TestStorePath:
    def test_store_never_blocks(self, chip):
        assert chip.store(0, 0x40_0000, 0, 0) == 0  # miss -> outstanding
        assert chip.has_outstanding(0)

    def test_store_invalidates_other_l1(self, chip):
        chip.load(0, 0x1000, 0, 0, overlappable=False)
        chip.load(1, 0x1000, 0, 50_000, overlappable=False)
        chip.store(1, 0x1000, 0, 60_000)
        chip.drain(1, 70_000)
        # core 0 now misses in L1 (tag-invalid -> coherency miss)
        chip.load(0, 0x1000, 0, 80_000, overlappable=False)
        assert chip.stats[0].coherency_misses == 1

    def test_store_marks_value_version(self, chip):
        chip.store(0, 0x1000, 0, 0)
        version, writer = chip.directory.load_value(0x1000)
        assert (version, writer) == (1, 0)


class TestWarmup:
    def test_warm_line_fills_hierarchy_silently(self, chip):
        chip.warm_line(0, 0x1000)
        assert chip.stats[0].l1_misses == 0
        assert chip.stats[0].llc_misses == 0
        assert chip.load(0, 0x1000, 0, 0) == 0  # L1 hit
        assert chip.stats[0].l1_hits == 1

    def test_warm_line_updates_atd(self, machine):
        accountant = CycleAccountant(machine)
        chip = Chip(machine, accountant)
        chip.warm_line(0, 0x1000)
        set_index = chip.llc.geometry.set_index(0x1000)
        if accountant.atds[0].is_sampled(set_index):
            line = chip.llc.geometry.line_addr(0x1000)
            assert accountant.atds[0].tag_store.contains(line)
        # warm accesses are not counted
        assert accountant.llc_accesses[0] == 0

    def test_warm_respects_capacity(self):
        machine = MachineConfig(
            n_cores=1,
            llc=CacheConfig(size_bytes=64 * KB, assoc=4, hit_latency=30,
                            hidden_latency=30),
        )
        chip = Chip(machine)
        for k in range(4096):
            chip.warm_line(0, k * LINE)
        assert chip.llc.occupancy() <= machine.llc.n_lines


class TestStats:
    def test_instruction_counting(self, chip):
        chip.compute(0, 100, 0)
        chip.load(0, 0x1000, 0, 0)
        chip.store(0, 0x2000, 0, 0)
        assert chip.stats[0].instrs == 102
        assert chip.stats[0].loads == 1
        assert chip.stats[0].stores == 1

    def test_per_core_isolation(self, chip):
        chip.load(0, 0x1000, 0, 0)
        assert chip.stats[1].loads == 0
