"""Execution trace recorder and its renderings."""

from __future__ import annotations

import json

from repro.config import MachineConfig, SchedConfig
from repro.sim.engine import Simulation
from repro.sim.trace import TraceRecorder
from repro.workloads.program import BarrierWait, Compute, Program

from tests.conftest import compute_only_program, lock_step_program


def traced(machine, program):
    trace = TraceRecorder()
    result = Simulation(machine, program, trace=trace).run()
    return trace, result


class TestRecording:
    def test_compute_program_one_interval_per_thread(self, machine4):
        trace, result = traced(machine4, compute_only_program(4))
        assert len(trace.intervals) == 4
        for interval in trace.intervals:
            assert interval.end_reason == "finished"
            assert interval.duration > 0

    def test_interval_times_within_run(self, machine4):
        trace, result = traced(machine4, lock_step_program(4))
        for interval in trace.intervals:
            assert 0 <= interval.start <= interval.end
            assert interval.end <= result.total_cycles

    def test_blocking_produces_multiple_intervals(self, machine4):
        def body(tid):
            yield Compute(100 if tid else 50_000)
            yield BarrierWait(0)
            yield Compute(100)

        trace, __ = traced(machine4, Program("b", [body(t) for t in range(4)]))
        # early arrivals block at the barrier -> >= 2 intervals each
        for tid in (1, 2, 3):
            assert len(trace.intervals_of_thread(tid)) >= 2
        reasons = {iv.end_reason for iv in trace.intervals}
        assert "blocked" in reasons

    def test_preemption_recorded(self):
        machine = MachineConfig(
            n_cores=1, sched=SchedConfig(timeslice_cycles=1_000)
        )
        trace, __ = traced(machine, compute_only_program(2, 20_000))
        reasons = [iv.end_reason for iv in trace.intervals]
        assert "preempted" in reasons

    def test_core_accounting_consistent(self, machine4):
        trace, result = traced(machine4, lock_step_program(4))
        for core in range(4):
            assert 0 <= trace.busy_cycles_of_core(core) <= result.total_cycles

    def test_thread_run_cycles_positive(self, machine4):
        trace, __ = traced(machine4, lock_step_program(4))
        for tid in range(4):
            assert trace.run_cycles_of_thread(tid) > 0


class TestUtilization:
    def test_busy_cores_high_idle_cores_zero(self, machine4):
        trace, __ = traced(machine4, compute_only_program(2))
        utilization = trace.core_utilization(4)
        assert utilization[0] > 0.5
        assert utilization[2] == 0.0
        assert utilization[3] == 0.0

    def test_empty_trace(self):
        trace = TraceRecorder()
        assert trace.core_utilization(2) == [0.0, 0.0]
        assert trace.end_time == 0


class TestExports:
    def test_chrome_trace_valid_json(self, machine4):
        trace, __ = traced(machine4, lock_step_program(4))
        data = json.loads(trace.to_chrome_trace())
        events = data["traceEvents"]
        assert len(events) == len(trace.intervals)
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert event["args"]["end"] in ("finished", "blocked", "preempted")

    def test_timeline_rows(self, machine4):
        trace, __ = traced(machine4, compute_only_program(4))
        text = trace.render_timeline(4, width=40)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 cores
        # every core ran its own thread: glyphs 0..3 each appear
        for tid in range(4):
            assert str(tid) in text

    def test_timeline_idle_core_dots(self, machine4):
        trace, __ = traced(machine4, compute_only_program(1))
        text = trace.render_timeline(4, width=20)
        core3_row = text.splitlines()[4]
        assert set(core3_row.split("|")[1]) == {"."}

    def test_timeline_empty(self):
        assert "empty" in TraceRecorder().render_timeline(2)
