"""Address decomposition: cache sets/tags and DRAM banks/pages."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.config import KB, CacheConfig, DramConfig
from repro.sim.address import CacheGeometry, DramGeometry, word_addr

ADDRS = st.integers(min_value=0, max_value=2**48 - 1)


def make_geometry(size_kb=64, assoc=4, line=64) -> CacheGeometry:
    return CacheGeometry.from_config(
        CacheConfig(size_bytes=size_kb * KB, assoc=assoc, line_bytes=line)
    )


class TestCacheGeometry:
    def test_line_addr_strips_offset(self):
        geo = make_geometry()
        assert geo.line_addr(0) == geo.line_addr(63)
        assert geo.line_addr(64) == geo.line_addr(0) + 1

    def test_set_index_range(self):
        geo = make_geometry()
        n_sets = (64 * KB) // (4 * 64)
        assert geo.n_sets == n_sets
        for addr in (0, 64, 4096, 123456789):
            assert 0 <= geo.set_index(addr) < n_sets

    def test_consecutive_lines_map_to_consecutive_sets(self):
        geo = make_geometry()
        assert geo.set_index(64) == (geo.set_index(0) + 1) % geo.n_sets

    def test_set_and_tag_matches_separate_calls(self):
        geo = make_geometry()
        for addr in (0, 64, 0xDEADBEEF, 2**40 + 12345):
            assert geo.set_and_tag(addr) == (geo.set_index(addr), geo.tag(addr))

    @given(ADDRS, ADDRS)
    def test_same_set_and_tag_means_same_line(self, a, b):
        geo = make_geometry()
        if geo.set_and_tag(a) == geo.set_and_tag(b):
            assert geo.line_addr(a) == geo.line_addr(b)

    @given(ADDRS)
    def test_reconstruction(self, addr):
        """set index and tag together uniquely identify the line."""
        geo = make_geometry()
        set_index, tag = geo.set_and_tag(addr)
        line = geo.line_addr(addr)
        assert line == (tag << (geo.n_sets.bit_length() - 1)) | set_index


class TestDramGeometry:
    def test_within_page_same_bank_and_page(self):
        geo = DramGeometry.from_config(DramConfig())
        assert geo.page_id(0) == geo.page_id(4095)
        assert geo.bank_index(0) == geo.bank_index(4095)

    def test_consecutive_pages_rotate_banks(self):
        geo = DramGeometry.from_config(DramConfig())
        banks = [geo.bank_index(page * 4096) for page in range(16)]
        assert banks[:8] == list(range(8))
        assert banks[8:] == list(range(8))

    @given(ADDRS)
    def test_bank_in_range(self, addr):
        geo = DramGeometry.from_config(DramConfig())
        assert 0 <= geo.bank_index(addr) < 8

    @given(ADDRS)
    def test_page_id_consistent_with_bank(self, addr):
        geo = DramGeometry.from_config(DramConfig())
        assert geo.bank_index(addr) == geo.page_id(addr) % 8


class TestWordAddr:
    def test_aligns_down(self):
        assert word_addr(0) == 0
        assert word_addr(7) == 0
        assert word_addr(8) == 8
        assert word_addr(0xFFF) == 0xFF8

    @given(ADDRS)
    def test_idempotent(self, addr):
        assert word_addr(word_addr(addr)) == word_addr(addr)
