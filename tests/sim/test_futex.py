"""Futex wait/wake and sched_yield ops."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.errors import DeadlockError
from repro.osmodel.thread import FINISHED
from repro.sim.engine import simulate
from repro.workloads.program import (
    Compute,
    FutexWait,
    FutexWake,
    Program,
    YieldCpu,
)

ADDR = 0x5000_0000


class TestFutex:
    def test_wait_then_wake(self, machine4):
        woke_at = []

        def waiter():
            yield FutexWait(ADDR)
            woke_at.append("woken")
            yield Compute(10)

        def waker():
            yield Compute(5_000)
            yield FutexWake(ADDR)

        result = simulate(machine4, Program("f", [waiter(), waker()]))
        assert woke_at == ["woken"]
        # waker computes 5000 instrs (~1250 cycles) before the wake
        assert result.threads[0].end_time > 1_250
        assert result.threads[0].n_yields == 1
        assert result.threads[0].gt_yield_cycles > 1_250

    def test_wake_all(self, machine4):
        def waiter():
            yield FutexWait(ADDR)
            yield Compute(10)

        def waker():
            yield Compute(2_000)
            yield FutexWake(ADDR, wake_all=True)

        result = simulate(
            machine4, Program("f", [waiter(), waiter(), waiter(), waker()])
        )
        assert all(t.state == FINISHED for t in result.threads)

    def test_wake_one_leaves_others_blocked(self, machine4):
        def waiter():
            yield FutexWait(ADDR)

        def waker():
            yield Compute(1_000)
            yield FutexWake(ADDR)  # wakes exactly one

        with pytest.raises(DeadlockError):
            simulate(machine4, Program("f", [waiter(), waiter(), waker()]))

    def test_wake_without_waiters_is_noop(self, machine4):
        def body():
            yield FutexWake(ADDR)
            yield Compute(10)

        result = simulate(machine4, Program("f", [body()]))
        assert result.threads[0].state == FINISHED

    def test_distinct_addresses_independent(self, machine4):
        def waiter(addr):
            yield FutexWait(addr)

        def waker():
            yield Compute(500)
            yield FutexWake(ADDR)
            yield FutexWake(ADDR + 64)

        result = simulate(
            machine4,
            Program("f", [waiter(ADDR), waiter(ADDR + 64), waker()]),
        )
        assert all(t.state == FINISHED for t in result.threads)

    def test_wait_counts_as_sync_yield(self, machine4):
        """Futex waits are synchronization blocks: accounted yielding."""
        from repro.accounting.accountant import CycleAccountant
        from repro.sim.engine import Simulation

        def waiter():
            yield FutexWait(ADDR)

        def waker():
            yield Compute(3_000)
            yield FutexWake(ADDR)

        accountant = CycleAccountant(machine := MachineConfig(n_cores=2))
        Simulation(machine, Program("f", [waiter(), waker()]), accountant).run()
        # waker computes 3000 instrs (~750 cycles) before the wake
        assert accountant.yield_cycles.get(0, 0) > 750


class TestYieldCpu:
    def test_yield_rotates_threads_on_one_core(self):
        machine = MachineConfig(n_cores=1)
        order = []

        def body(tid):
            for step in range(3):
                order.append((tid, step))
                yield Compute(100)
                yield YieldCpu()

        simulate(machine, Program("y", [body(0), body(1)]))
        # threads alternate instead of running to completion
        assert order[:4] == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_yield_without_competition_continues(self, machine4):
        def body():
            yield Compute(100)
            yield YieldCpu()
            yield Compute(100)

        result = simulate(machine4, Program("y", [body()]))
        assert result.threads[0].state == FINISHED

    def test_yield_is_not_sync_yielding(self, machine4):
        """sched_yield is not a synchronization wait: no yield interval."""
        from repro.accounting.accountant import CycleAccountant
        from repro.sim.engine import Simulation

        def body():
            yield Compute(100)
            yield YieldCpu()
            yield Compute(100)

        accountant = CycleAccountant(machine4)
        Simulation(machine4, Program("y", [body()]), accountant).run()
        assert accountant.yield_cycles.get(0, 0) == 0
