"""Set-associative cache: LRU order, eviction, dirty tracking."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.sim.cache import SetAssocCache


def make_cache(n_sets=4, assoc=2) -> SetAssocCache:
    return SetAssocCache(
        CacheConfig(size_bytes=n_sets * assoc * 64, assoc=assoc, line_bytes=64)
    )


def line_in_set(cache: SetAssocCache, set_index: int, k: int) -> int:
    """The k-th distinct line address mapping to ``set_index``."""
    return set_index + k * cache.geometry.n_sets


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)
        assert cache.n_hits == 1
        assert cache.n_misses == 1

    def test_fill_evicts_lru(self):
        cache = make_cache(n_sets=4, assoc=2)
        a, b, c = (line_in_set(cache, 1, k) for k in range(3))
        cache.fill(a)
        cache.fill(b)
        victim = cache.fill(c)
        assert victim == (a, False)
        assert not cache.contains(a)
        assert cache.contains(b)
        assert cache.contains(c)

    def test_lookup_promotes_to_mru(self):
        cache = make_cache(n_sets=4, assoc=2)
        a, b, c = (line_in_set(cache, 2, k) for k in range(3))
        cache.fill(a)
        cache.fill(b)
        cache.lookup(a)  # promote a; b becomes LRU
        victim = cache.fill(c)
        assert victim == (b, False)

    def test_lookup_without_lru_update_keeps_order(self):
        cache = make_cache(n_sets=4, assoc=2)
        a, b, c = (line_in_set(cache, 0, k) for k in range(3))
        cache.fill(a)
        cache.fill(b)
        cache.lookup(a, update_lru=False)
        victim = cache.fill(c)
        assert victim == (a, False)

    def test_refill_existing_line_no_eviction(self):
        cache = make_cache()
        cache.fill(9)
        assert cache.fill(9) is None
        assert cache.occupancy() == 1

    def test_contains_does_not_count(self):
        cache = make_cache()
        cache.contains(1)
        assert cache.n_hits == 0
        assert cache.n_misses == 0


class TestDirty:
    def test_dirty_victim_reported(self):
        cache = make_cache(n_sets=4, assoc=2)
        a, b, c = (line_in_set(cache, 3, k) for k in range(3))
        cache.fill(a, dirty=True)
        cache.fill(b)
        victim = cache.fill(c)
        assert victim == (a, True)

    def test_mark_dirty(self):
        cache = make_cache(n_sets=4, assoc=2)
        a, b, c = (line_in_set(cache, 3, k) for k in range(3))
        cache.fill(a)
        cache.mark_dirty(a)
        cache.fill(b)
        assert cache.fill(c) == (a, True)

    def test_refill_preserves_dirty(self):
        cache = make_cache(n_sets=4, assoc=2)
        a, b, c = (line_in_set(cache, 3, k) for k in range(3))
        cache.fill(a, dirty=True)
        cache.fill(a, dirty=False)  # must not clear the dirty bit
        cache.fill(b)
        assert cache.fill(c) == (a, True)

    def test_mark_dirty_on_absent_line_is_noop(self):
        cache = make_cache()
        cache.mark_dirty(42)
        assert not cache.contains(42)


class TestInvalidate:
    def test_invalidate_present(self):
        cache = make_cache()
        cache.fill(7)
        assert cache.invalidate(7)
        assert not cache.contains(7)

    def test_invalidate_absent(self):
        cache = make_cache()
        assert not cache.invalidate(7)

    def test_invalidate_frees_way(self):
        cache = make_cache(n_sets=4, assoc=2)
        a, b, c = (line_in_set(cache, 1, k) for k in range(3))
        cache.fill(a)
        cache.fill(b)
        cache.invalidate(a)
        assert cache.fill(c) is None  # no eviction needed
        assert cache.occupancy() == 2


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=300))
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = make_cache(n_sets=4, assoc=2)
        for line in lines:
            if not cache.lookup(line):
                cache.fill(line)
            assert cache.occupancy() <= 8
            for set_index in range(4):
                assert len(cache.lines_in_set(set_index)) <= 2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=300))
    def test_most_recent_fill_always_resident(self, lines):
        cache = make_cache(n_sets=8, assoc=4)
        for line in lines:
            cache.fill(line)
            assert cache.contains(line)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    def test_set_isolation(self, lines):
        """A fill can only evict lines of its own set."""
        cache = make_cache(n_sets=4, assoc=2)
        for line in lines:
            victim = cache.fill(line)
            if victim is not None:
                assert victim[0] % 4 == line % 4
