"""Engine edge cases: scheduler corners, pathological programs."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, SchedConfig
from repro.osmodel.thread import FINISHED
from repro.sim.engine import Simulation, simulate
from repro.workloads.program import (
    BarrierWait,
    Compute,
    Load,
    LockAcquire,
    LockRelease,
    Program,
    Store,
)


class TestEmptyAndTiny:
    def test_empty_thread_body(self, machine4):
        result = simulate(machine4, Program("e", [iter(())]))
        assert result.threads[0].state == FINISHED
        assert result.threads[0].instrs == 0

    def test_mixed_empty_and_working(self, machine4):
        def work():
            yield Compute(500)

        result = simulate(machine4, Program("m", [iter(()), work()]))
        assert all(t.state == FINISHED for t in result.threads)
        assert result.threads[0].end_time < result.threads[1].end_time

    def test_single_op(self, machine1):
        result = simulate(machine1, Program("s", [iter([Compute(1)])]))
        assert result.threads[0].instrs == 1


class TestPreemptedLockHolder:
    def test_holder_preemption_does_not_deadlock(self):
        """A lock holder preempted mid-critical-section must eventually
        resume and release (convoy, not deadlock)."""
        machine = MachineConfig(
            n_cores=1, sched=SchedConfig(timeslice_cycles=300)
        )

        def body(tid):
            for __ in range(5):
                yield LockAcquire(0)
                yield Compute(4_000)  # longer than the timeslice
                yield LockRelease(0)
                yield Compute(100)

        result = simulate(machine, Program("c", [body(0), body(1)]))
        assert all(t.state == FINISHED for t in result.threads)
        assert result.sync.locks[0].n_acquires == 10


class TestWakeToBusyCore:
    def test_woken_thread_waits_for_its_core(self):
        """A woken thread whose home core is running someone else must
        queue (its yield interval includes the queue wait)."""
        machine = MachineConfig(n_cores=1)

        def blocker():
            yield LockAcquire(0)
            yield Compute(2_000)
            yield LockRelease(0)
            yield Compute(20_000)  # keeps the core busy after release

        def waiter():
            yield Compute(10)
            yield LockAcquire(0)
            yield Compute(10)
            yield LockRelease(0)

        result = simulate(machine, Program("w", [blocker(), waiter()]))
        assert all(t.state == FINISHED for t in result.threads)

    def test_lock_passed_through_many_threads_one_core(self):
        machine = MachineConfig(
            n_cores=1, sched=SchedConfig(timeslice_cycles=2_000)
        )

        def body(tid):
            yield LockAcquire(0)
            yield Compute(500)
            yield LockRelease(0)

        result = simulate(machine, Program("p", [body(t) for t in range(6)]))
        assert result.sync.locks[0].n_acquires == 6


class TestStress:
    def test_many_locks(self, machine4):
        def body(tid):
            for lock_id in range(50):
                yield LockAcquire(lock_id)
                yield Compute(20)
                yield LockRelease(lock_id)

        result = simulate(machine4, Program("ml", [body(t) for t in range(4)]))
        assert len(result.sync.locks) == 50
        for lock in result.sync.locks.values():
            assert lock.n_acquires == 4

    def test_many_barriers(self, machine4):
        def body(tid):
            for phase in range(40):
                yield Compute(20 + tid)
                yield BarrierWait(phase)

        result = simulate(machine4, Program("mb", [body(t) for t in range(4)]))
        assert len(result.sync.barriers) == 40

    def test_alternating_load_store_same_line(self, machine4):
        """Four threads hammering one line: coherence ping-pong must
        stay consistent and terminate."""
        def body(tid):
            for k in range(100):
                yield Load(0x8000_0000)
                yield Store(0x8000_0000)

        result = simulate(machine4, Program("pp", [body(t) for t in range(4)]))
        assert all(t.state == FINISHED for t in result.threads)
        assert result.chip.directory.n_invalidations > 50

    def test_interleaved_barrier_ids_out_of_order(self, machine4):
        """Threads may reach barriers in any id order across phases."""
        def body(tid):
            yield Compute(100 * (tid + 1))
            yield BarrierWait(7)
            yield Compute(50)
            yield BarrierWait(3)

        result = simulate(machine4, Program("o", [body(t) for t in range(4)]))
        assert result.sync.barriers[7].n_episodes == 1
        assert result.sync.barriers[3].n_episodes == 1


class TestTimeMonotonicity:
    def test_end_times_nonnegative_and_ordered(self, machine4):
        from tests.conftest import lock_step_program

        result = simulate(machine4, lock_step_program(4))
        for thread in result.threads:
            assert 0 <= thread.end_time <= result.total_cycles
