"""Engine watchdog: max-cycles bound, livelock detection, truncation.

Also covers the deadlock edge cases the watchdog must *not* mask:
deadlock always raises (with a post-mortem snapshot) — truncation is
only for runs that are still executing but going nowhere.
"""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.core.rendering import render_stack
from repro.core.stack import build_stack
from repro.errors import DeadlockError, LivelockError, SimulationError
from repro.experiments.runner import run_accounted
from repro.osmodel.thread import FINISHED
from repro.sim.engine import Simulation, simulate
from repro.workloads.program import (
    BarrierWait,
    Compute,
    FutexWait,
    LockAcquire,
    Program,
)

from tests.conftest import lock_step_program


def livelock_program() -> Program:
    """A holder that exits still owning the lock, and a waiter that
    spins on it forever (no spin budget -> it never yields)."""

    def holder():
        yield LockAcquire(0)
        yield Compute(5_000)
        # no LockRelease: the holder finishes while holding the lock

    def waiter():
        yield Compute(100)
        yield LockAcquire(0)

    return Program(
        "livelock", [holder(), waiter()],
        spin_threshold_override=1 << 60,
    )


class TestMaxCycles:
    def test_raise_mode(self, machine4):
        sim = Simulation(machine4, lock_step_program(4, iters=200))
        with pytest.raises(SimulationError) as err:
            sim.run(max_cycles=5_000)
        assert "max_cycles" in str(err.value)
        assert err.value.snapshot is not None
        assert err.value.snapshot.cycle > 0

    def test_truncate_mode_returns_usable_result(self, machine4):
        result = simulate(
            machine4, lock_step_program(4, iters=200),
            max_cycles=5_000, on_timeout="truncate",
        )
        assert result.truncated
        assert result.truncation_reason == "max_cycles"
        assert result.unfinished_tids
        # every thread got an end time at (or before) the cut point
        assert result.total_cycles == max(result.thread_end_times)
        assert all(0 <= c for c in result.imbalance_cycles)

    def test_finished_run_is_not_flagged(self, machine4):
        result = simulate(
            machine4, lock_step_program(4),
            max_cycles=10_000_000, on_timeout="truncate",
        )
        assert not result.truncated
        assert result.truncation_reason is None
        assert result.unfinished_tids == []

    def test_bad_on_timeout_rejected(self, machine4):
        with pytest.raises(ValueError):
            simulate(machine4, lock_step_program(4), on_timeout="explode")


class TestLivelock:
    def test_raise_mode(self):
        machine = MachineConfig(n_cores=2)
        sim = Simulation(machine, livelock_program())
        with pytest.raises(LivelockError) as err:
            sim.run(livelock_window=20_000)
        snapshot = err.value.snapshot
        assert snapshot is not None
        spinners = [t for t in snapshot.threads if t.spinning_on]
        assert spinners and spinners[0].spinning_on == "lock:0"

    def test_truncate_mode(self):
        machine = MachineConfig(n_cores=2)
        result = simulate(
            machine, livelock_program(),
            livelock_window=20_000, on_timeout="truncate",
        )
        assert result.truncated
        assert result.truncation_reason == "livelock"
        assert result.unfinished_tids == [1]

    def test_spinning_is_not_progress(self):
        """The progress metric must ignore spin-loop instructions —
        a spinning thread retires instructions at full speed."""
        machine = MachineConfig(n_cores=2)
        result = simulate(
            machine, livelock_program(),
            livelock_window=20_000, on_timeout="truncate",
        )
        waiter = result.threads[1]
        assert waiter.spin_instrs > 0
        assert waiter.instrs > waiter.spin_instrs  # setup compute retired

    def test_healthy_run_unaffected(self, machine4):
        result = simulate(
            machine4, lock_step_program(4), livelock_window=50_000,
        )
        assert not result.truncated
        assert all(t.state == FINISHED for t in result.threads)


class TestDeadlockEdgeCases:
    def test_all_threads_blocked(self, machine4):
        """Every thread futex-waits with nobody left to wake them."""

        def body(tid):
            yield Compute(50)
            yield FutexWait(0x100)

        with pytest.raises(DeadlockError) as err:
            simulate(machine4, Program("all-wait", [body(t) for t in range(4)]))
        snapshot = err.value.snapshot
        assert snapshot is not None
        assert set(snapshot.blocked_tids) == {0, 1, 2, 3}

    def test_single_thread_self_deadlock(self, machine1):
        """One thread blocking on an address nobody will wake."""

        def body():
            yield Compute(10)
            yield FutexWait(0x200)

        with pytest.raises(DeadlockError):
            simulate(machine1, Program("self", [body()]))

    def test_barrier_with_finished_participant(self, machine4):
        """Three threads wait on a 4-party barrier whose fourth party
        already finished: they can never be released."""

        def body(tid):
            yield Compute(100)
            if tid != 3:
                yield BarrierWait(0)

        with pytest.raises(DeadlockError) as err:
            simulate(machine4, Program("gone", [body(t) for t in range(4)]))
        snapshot = err.value.snapshot
        assert snapshot is not None
        barrier = snapshot.barriers[0]
        assert barrier.arrived == 3
        assert barrier.n_parties == 4
        finished = [t for t in snapshot.threads if t.state == FINISHED]
        assert [t.tid for t in finished] == [3]

    def test_deadlock_raises_even_in_truncate_mode(self, machine4):
        """Truncation is for runs still executing; a deadlocked run has
        nothing left to simulate and must raise."""

        def body(tid):
            yield FutexWait(0x300)

        with pytest.raises(DeadlockError):
            simulate(
                machine4, Program("dl", [body(t) for t in range(4)]),
                max_cycles=1_000_000, on_timeout="truncate",
            )


class TestTruncatedAccounting:
    def test_truncated_run_yields_flagged_stack(self, machine4):
        """A watchdog-cut run must still produce a valid speedup stack,
        flagged as partial all the way through the pipeline."""
        result, report = run_accounted(
            machine4, lock_step_program(4, iters=200),
            max_cycles=10_000, on_timeout="truncate",
        )
        assert result.truncated
        assert report.truncated
        stack = build_stack("lock-step", report)
        assert stack.truncated
        stack.validate_consistency()
        assert stack.base_speedup > 0
        assert "[TRUNCATED RUN]" in render_stack(stack)

    def test_complete_run_stack_not_flagged(self, machine4):
        result, report = run_accounted(machine4, lock_step_program(4))
        assert not report.truncated
        stack = build_stack("lock-step", report)
        assert not stack.truncated
        assert "[TRUNCATED RUN]" not in render_stack(stack)


class TestTruncationCheckpoint:
    """``_truncate`` saves the pre-truncation state *before* stamping
    end times, so a watchdog checkpoint resumes under a raised limit;
    fault exits checkpoint-then-raise when the policy covers them."""

    def _hook(self, tmp_path, machine, policy=None):
        from repro.checkpoint import (
            CheckpointHook,
            CheckpointPolicy,
            cell_descriptor,
        )

        descriptor = cell_descriptor(machine, "lock-step", 4, 1.0)
        return CheckpointHook(
            tmp_path / "t.ckpt", descriptor,
            policy or CheckpointPolicy(),
        )

    def test_truncate_saves_before_end_time_stamping(
        self, tmp_path, machine4
    ):
        """The saved tree must predate the truncation bookkeeping:
        unfinished threads carry no end time in the checkpoint even
        though the returned result stamps the cut point."""
        from repro.checkpoint import load_checkpoint

        hook = self._hook(tmp_path, machine4)
        sim = Simulation(machine4, lock_step_program(4, iters=200))
        result = sim.run(
            max_cycles=5_000, on_timeout="truncate", checkpoint=hook,
        )
        assert result.truncated
        header, state = load_checkpoint(hook.path)
        assert header["reason"] == "max_cycles"
        unfinished = [
            t for t in state["threads"] if t["state"] != "finished"
        ]
        assert unfinished
        # -1 is the engine's "never finished" sentinel: the truncation
        # cut point is NOT stamped into the checkpoint
        assert all(t["end_time"] == -1 for t in unfinished)

    def test_watchdog_checkpoint_resumes_under_raised_limit(
        self, tmp_path, machine4
    ):
        """Continue a max-cycles-cut run from its checkpoint with the
        limit lifted; it must finish exactly like an unbounded run."""
        from repro.checkpoint import load_checkpoint

        reference = simulate(machine4, lock_step_program(4, iters=200))
        hook = self._hook(tmp_path, machine4)
        sim = Simulation(machine4, lock_step_program(4, iters=200))
        sim.run(max_cycles=5_000, on_timeout="truncate", checkpoint=hook)
        _header, state = load_checkpoint(hook.path)
        resumed = Simulation(machine4, lock_step_program(4, iters=200))
        resumed.load_state_dict(state)
        result = resumed.run()
        assert not result.truncated
        assert result.total_cycles == reference.total_cycles
        assert result.thread_end_times == reference.thread_end_times

    def test_livelock_truncation_checkpoints(self, tmp_path):
        machine = MachineConfig(n_cores=2)
        from repro.checkpoint import (
            CheckpointHook,
            CheckpointPolicy,
            cell_descriptor,
            read_header,
        )

        hook = CheckpointHook(
            tmp_path / "l.ckpt",
            cell_descriptor(machine, "livelock", 2, 1.0),
            CheckpointPolicy(),
        )
        result = simulate(
            machine, livelock_program(),
            livelock_window=20_000, on_timeout="truncate",
            checkpoint=hook,
        )
        assert result.truncation_reason == "livelock"
        assert read_header(hook.path)["reason"] == "livelock"

    def test_deadlock_checkpoints_then_raises(self, tmp_path, machine4):
        from repro.checkpoint import CheckpointPolicy, read_header

        def body(tid):
            yield Compute(50)
            yield FutexWait(0x100)

        hook = self._hook(
            tmp_path, machine4, CheckpointPolicy(on_fault=True),
        )
        sim = Simulation(
            machine4, Program("all-wait", [body(t) for t in range(4)])
        )
        with pytest.raises(DeadlockError) as err:
            sim.run(checkpoint=hook)
        assert err.value.snapshot is not None
        assert read_header(hook.path)["reason"] == "deadlock"

    def test_policy_off_means_no_watchdog_save(self, tmp_path, machine4):
        from repro.checkpoint import CheckpointPolicy

        hook = self._hook(
            tmp_path, machine4, CheckpointPolicy(on_watchdog=False),
        )
        result = simulate(
            machine4, lock_step_program(4, iters=200),
            max_cycles=5_000, on_timeout="truncate", checkpoint=hook,
        )
        assert result.truncated
        assert not hook.path.exists()
