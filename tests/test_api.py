"""Public API surface: everything advertised in __all__ exists."""

from __future__ import annotations

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_key_entry_points(self):
        assert callable(repro.run_experiment)
        assert callable(repro.build_program)
        assert callable(repro.render_stack)
        assert len(repro.SUITE) == 28

    def test_config_round_trip(self):
        machine = repro.MachineConfig(n_cores=8)
        assert machine.with_cores(2).n_cores == 2
        assert machine.with_llc_size(4 * repro.MB).llc.size_bytes == 4 * repro.MB
        # originals untouched (frozen dataclasses)
        assert machine.n_cores == 8
        assert machine.llc.size_bytes == 2 * repro.MB
