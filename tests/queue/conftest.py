"""Shared fixtures for the work-queue tests."""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunPolicy
from repro.parallel import CellSpec
from repro.queue import QueueStore


@pytest.fixture
def tiny_cells(tiny_spec) -> list[CellSpec]:
    return [
        CellSpec(spec=tiny_spec, n_threads=2),
        CellSpec(spec=tiny_spec, n_threads=4),
    ]


@pytest.fixture
def policy() -> RunPolicy:
    # jitter off so backoff arithmetic in assertions stays exact
    return RunPolicy(backoff_s=1.0, backoff_factor=2.0, backoff_jitter=False)


@pytest.fixture
def store(tmp_path, tiny_cells, policy) -> QueueStore:
    return QueueStore.create(
        tmp_path / "q", tiny_cells, policy,
        lease_ttl_s=10.0, poison_after=3,
    )
