"""The on-disk lease protocol: claims, fencing, reclaim, quarantine.

Every test drives :class:`~repro.queue.store.QueueStore` with an
explicit ``now`` — no sleeps, no wall-clock races; the chaos tests in
``test_chaos.py`` cover the real-time multi-process behaviour.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.queue import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    QUARANTINED,
    QueueStore,
)

T0 = 1_000.0


class TestCreate:
    def test_layout_and_manifest(self, store, tiny_cells):
        assert store.order == ["tiny:2", "tiny:4"]
        assert store.counts().pending == 2
        for sub in ("pending", "leased", "done", "failed",
                    "quarantined", "tmp", "workers", "chaos"):
            assert (store.root / sub).is_dir()
        # a second store attaches to the same manifest
        reattached = QueueStore(store.root)
        assert reattached.order == store.order
        assert reattached.lease_ttl_s == store.lease_ttl_s
        assert reattached.cells["tiny:4"].n_threads == 4

    def test_create_twice_rejected(self, store, tiny_cells, policy):
        with pytest.raises(ConfigError, match="already exists"):
            QueueStore.create(store.root, tiny_cells, policy)

    def test_duplicate_keys_rejected(self, tmp_path, tiny_cells, policy):
        with pytest.raises(ConfigError, match="duplicate"):
            QueueStore.create(
                tmp_path / "q", tiny_cells + tiny_cells[:1], policy
            )

    def test_bad_knobs_rejected(self, tmp_path, tiny_cells, policy):
        with pytest.raises(ConfigError, match="TTL"):
            QueueStore.create(tmp_path / "a", tiny_cells, policy,
                              lease_ttl_s=0.0)
        with pytest.raises(ConfigError, match="poison_after"):
            QueueStore.create(tmp_path / "b", tiny_cells, policy,
                              poison_after=0)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no queue manifest"):
            QueueStore(tmp_path / "nowhere")

    def test_version_mismatch_rejected(self, store):
        manifest = json.loads((store.root / "queue.json").read_text())
        manifest["version"] = 99
        (store.root / "queue.json").write_text(json.dumps(manifest))
        with pytest.raises(ConfigError, match="version"):
            QueueStore(store.root)


class TestClaims:
    def test_claim_is_single_winner(self, store):
        a = store.claim("wa", now=T0)
        b = store.claim("wb", now=T0)
        assert a.key == "tiny:2" and b.key == "tiny:4"
        assert store.claim("wc", now=T0) is None
        assert store.counts().leased == 2

    def test_lease_carries_the_cell(self, store):
        lease = store.claim("wa", now=T0)
        assert lease.cell.spec.name == "tiny"
        assert lease.deadline == T0 + store.lease_ttl_s
        assert lease.token == 1

    def test_not_before_skips_backed_off_cells(self, store):
        lease = store.claim("wa", now=T0)
        assert store.release(lease, delay_s=5.0, now=T0)
        # tiny:2 is backed off until T0+5: claims pick tiny:4 instead
        assert store.claim("wb", now=T0 + 1).key == "tiny:4"
        assert store.claim("wc", now=T0 + 1) is None
        assert store.claim("wc", now=T0 + 6).key == "tiny:2"

    def test_corrupt_pending_rebuilt_from_manifest(self, store):
        (store.root / PENDING / "tiny@2.json").write_text("{garbage")
        lease = store.claim("wa", now=T0)
        assert lease.key == "tiny:2"
        assert lease.expiries == 0

    def test_duplicate_pending_cannot_shadow_a_live_lease(self, store):
        lease = store.claim("wa", now=T0)
        # simulate the aftermath of a repaired-too-eagerly orphan: a
        # pending file reappears for a cell that is already leased
        (store.root / PENDING / "tiny@2.json").write_text(json.dumps(
            {"key": "tiny:2", "expiries": 0, "lease_seq": 0,
             "not_before": 0.0}
        ))
        # the duplicate is dropped (link into leased/ refuses to
        # clobber); the claim moves on to the next cell
        other = store.claim("wb", now=T0)
        assert other.key == "tiny:4"
        assert store.state_of("tiny:2") == LEASED
        # the original owner is unharmed
        assert store.renew(lease, now=T0 + 1)


class TestFencing:
    def test_renew_extends_the_deadline(self, store):
        lease = store.claim("wa", now=T0)
        assert store.renew(lease, now=T0 + 4)
        assert lease.deadline == T0 + 4 + store.lease_ttl_s

    def test_stale_lease_cannot_renew_or_complete(self, store):
        stale = store.claim("wa", now=T0)
        [event] = store.reclaim_expired(now=T0 + 11)
        assert event.key == "tiny:2" and not event.quarantined
        fresh = store.claim("wb", now=T0 + 100)
        assert fresh.key == "tiny:2" and fresh.token == 2
        # the zombie's token is fenced out everywhere
        assert not store.renew(stale, now=T0 + 101)
        assert not store.complete(stale, {"status": "ok", "attempts": 1})
        assert not store.release(stale)
        # and the rightful owner is untouched by those attempts
        assert store.renew(fresh, now=T0 + 101)
        assert store.complete(fresh, {"status": "ok", "attempts": 1})
        assert store.state_of("tiny:2") == DONE

    def test_complete_routes_by_status(self, store):
        a = store.claim("wa", now=T0)
        b = store.claim("wb", now=T0)
        assert store.complete(a, {"status": "ok", "attempts": 1})
        assert store.complete(b, {"status": "failed", "attempts": 2,
                                  "error": "boom", "error_type": "X"})
        assert store.state_of("tiny:2") == DONE
        assert store.state_of("tiny:4") == FAILED
        assert store.all_terminal()
        assert store.result("tiny:4")["error"] == "boom"

    def test_complete_rejects_bad_status(self, store):
        lease = store.claim("wa", now=T0)
        with pytest.raises(ValueError, match="status"):
            store.complete(lease, {"status": "quarantined"})


class TestReclaimer:
    def test_live_leases_are_left_alone(self, store):
        store.claim("wa", now=T0)
        assert store.reclaim_expired(now=T0 + 5) == []
        assert store.state_of("tiny:2") == LEASED

    def test_expired_lease_requeues_with_backoff(self, store, policy):
        store.claim("wa", now=T0)
        [event] = store.reclaim_expired(now=T0 + 11)
        assert (event.key, event.worker, event.expiries) == ("tiny:2", "wa", 1)
        assert event.delay_s == policy.backoff_delay(2, "tiny:2") == 1.0
        record = json.loads(
            (store.root / PENDING / "tiny@2.json").read_text()
        )
        assert record["expiries"] == 1
        assert record["not_before"] == T0 + 11 + 1.0

    def test_third_expiry_quarantines(self, store):
        now = T0
        for expiry in range(1, 4):
            lease = store.claim("wa", now=now + 1000)
            assert lease.key == "tiny:2"
            [event] = store.reclaim_expired(now=now + 2000)
            assert event.expiries == expiry
            now += 2000
        assert event.quarantined
        assert store.state_of("tiny:2") == QUARANTINED
        record = store.result("tiny:2")
        assert record["status"] == QUARANTINED
        assert record["expiries"] == 3
        assert record["last_worker"] == "wa"
        assert record["postmortem"] is None  # no checkpoint_dir armed
        # quarantined cells never return to circulation
        assert store.claim("wb", now=now + 5000).key == "tiny:4"

    def test_corrupt_lease_is_reclaimed(self, store):
        store.claim("wa", now=T0)
        (store.root / LEASED / "tiny@2.json").write_text("not json")
        [event] = store.reclaim_expired(now=T0 + 1)
        assert event.corrupt and event.key == "tiny:2"
        assert store.state_of("tiny:2") == PENDING

    def test_orphan_needs_two_sightings(self, store):
        store.claim("wa", now=T0)
        (store.root / LEASED / "tiny@2.json").unlink()
        # first scan: noted, not repaired (could be mid-transition)
        assert store.reclaim_expired(now=T0 + 1) == []
        assert store.state_of("tiny:2") is None
        # second scan: rebuilt from the manifest
        [event] = store.reclaim_expired(now=T0 + 2)
        assert event.corrupt
        assert store.state_of("tiny:2") == PENDING


class TestChaosMarkers:
    def test_armed_exactly_once(self, store):
        assert store.chaos_armed("kill", "tiny:2")
        assert not store.chaos_armed("kill", "tiny:2")
        assert store.chaos_armed("kill", "tiny:4")
        assert store.chaos_armed("stall", "tiny:2")
