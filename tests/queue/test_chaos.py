"""The chaos harness: the acceptance invariant for the queue backend.

A 3-worker queue sweep with a worker SIGKILLed mid-cell (right after a
checkpoint save), a second worker whose heartbeat stalls mid-lease,
and a third killed the instant it claims a cell must still:

* complete every cell and finish with a clean report;
* write a journal byte-identical to the serial run's;
* resume the killed cell from its checkpoint, not from cycle 0;
* reclaim every orphaned lease via TTL expiry (observable in the
  ``runtime.*`` counters).

The chaos hooks are one-shot (``chaos/`` markers), so respawned
workers do not re-die on the same cell and the sweep converges.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import BatchRunner, RunPolicy
from repro.observability.events import EventBus, LeaseExpired
from repro.observability.metrics import MetricsRegistry
from repro.parallel import cells_from_sweep
from repro.queue import QueueStore, run_queue_sweep
from repro.robustness.journal import SweepJournal
from repro.workloads.suite import sweep_cells

BENCHMARKS = ("cholesky", "blackscholes_small")
THREADS = (2, 4)
SCALE = 1.0
LEASE_TTL_S = 1.0
CHECKPOINT_EVERY = 20_000

KILLED_CELL = "cholesky:4"       # SIGKILL right after a checkpoint save
STALLED_CELL = "cholesky:2"      # heartbeat stops renewing mid-lease
CLAIM_KILL_CELL = "blackscholes_small:2"  # dies the moment it claims


@pytest.fixture(scope="module")
def serial_journal(tmp_path_factory):
    # instrumented, like the chaos run below: with a metrics registry
    # attached the journal carries per-cell sim.* metrics, so the
    # byte-identity assertion covers those too
    path = tmp_path_factory.mktemp("serial") / "journal.json"
    BatchRunner(
        policy=RunPolicy(), scale=SCALE, journal=SweepJournal(str(path)),
        metrics=MetricsRegistry(),
    ).run_sweep(sweep_cells(BENCHMARKS, THREADS))
    return path.read_bytes()


def test_chaos_sweep_matches_serial(tmp_path, monkeypatch, serial_journal):
    monkeypatch.setenv("REPRO_TEST_KILL_AFTER_SAVE", KILLED_CELL)
    monkeypatch.setenv("REPRO_TEST_STALL_HEARTBEAT", STALLED_CELL)
    monkeypatch.setenv("REPRO_TEST_KILL_CELL", CLAIM_KILL_CELL)

    bus = EventBus()
    expired: list[LeaseExpired] = []
    bus.subscribe(LeaseExpired, expired.append)
    metrics = MetricsRegistry()
    journal = tmp_path / "journal.json"
    policy = RunPolicy(
        checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every=CHECKPOINT_EVERY,
    )
    report = run_queue_sweep(
        cells_from_sweep(sweep_cells(BENCHMARKS, THREADS), scale=SCALE),
        workers=3,
        policy=policy,
        journal=SweepJournal(str(journal)),
        bus=bus,
        metrics=metrics,
        queue_dir=tmp_path / "q",
        lease_ttl_s=LEASE_TTL_S,
    )

    # every cell completed despite two dead workers and a stalled lease
    assert report.ok and not report.interrupted
    assert len(report.completed) == 4
    # ... and the journal is byte-for-byte the serial journal
    assert journal.read_bytes() == serial_journal

    store = QueueStore(tmp_path / "q")
    counts = store.counts()
    assert counts.done == 4 and counts.terminal == 4

    # the killed cell resumed from its checkpoint, not cycle 0
    done = store.result(KILLED_CELL)
    assert done["resumed_from_cycle"] >= CHECKPOINT_EVERY

    # both kill modes orphaned a lease the reclaimer had to expire
    # (the reclaimer runs every driver poll, well inside 2x TTL)
    assert metrics.counter("runtime.lease_expiries").value >= 2
    assert metrics.counter("runtime.requeues").value >= 2
    assert metrics.counter("runtime.quarantined").value == 0
    assert {e.key for e in expired} >= {KILLED_CELL, CLAIM_KILL_CELL}
    assert metrics.counter("runtime.worker_crashes").value >= 2
    assert metrics.counter("runtime.cells_ok").value == 4

    # chaos hooks fired exactly once each (the one-shot markers exist)
    chaos = {p.name for p in (tmp_path / "q" / "chaos").iterdir()}
    assert chaos == {
        "kill-after-save-cholesky@4.json",
        "stall-heartbeat-cholesky@2.json",
        "kill-at-claim-blackscholes_small@2.json",
    }


def test_spans_merge_exactly_once_under_worker_death(tmp_path, monkeypatch):
    """Worker death mid-cell must not duplicate or drop spans: the
    fenced ``complete`` writes each cell's span batch on the terminal
    record only, so the merged document carries every cell exactly once
    — including the cell that crash-resumed from a checkpoint."""
    from repro.observability.spans import SpanRecorder, validate_span_rows

    killed = "cholesky:2"
    monkeypatch.setenv("REPRO_TEST_KILL_AFTER_SAVE", killed)
    spans = SpanRecorder()
    cells = cells_from_sweep(
        sweep_cells(("cholesky", "fft"), (2,)), scale=SCALE,
    )
    report = run_queue_sweep(
        cells,
        workers=2,
        policy=RunPolicy(
            checkpoint_dir=str(tmp_path / "ckpt"),
            checkpoint_every=CHECKPOINT_EVERY,
        ),
        journal=SweepJournal(str(tmp_path / "journal.json")),
        spans=spans,
        queue_dir=tmp_path / "q",
        lease_ttl_s=LEASE_TTL_S,
    )
    assert report.ok and len(report.completed) == 2

    store = QueueStore(tmp_path / "q")
    assert store.result(killed)["resumed_from_cycle"] >= CHECKPOINT_EVERY

    rows = spans.to_dicts()
    assert validate_span_rows(rows) == []
    by_name: dict[str, list[dict]] = {}
    for row in rows:
        by_name.setdefault(row["name"], []).append(row)
    # one terminal record per cell -> exactly one queue.run span and one
    # cell span each, even for the killed-and-resumed cell
    assert len(by_name["queue.run"]) == 2
    for key in ("cholesky:2", "fft:2"):
        assert len(by_name[key]) == 1, f"{key}: {by_name.get(key)}"
    # the resumed cell's spans came from the worker that finished it
    (killed_span,) = by_name[killed]
    assert killed_span["origin"].startswith("w")  # a worker, not "main"
    # driver-side merge structure: everything absorbed under queue.merge
    (merge,) = by_name["queue.merge"]
    assert all(
        row["parent"] is not None
        for run in by_name["queue.run"] for row in [run]
    )
    assert {row["parent"] for row in by_name["queue.run"]} == {merge["id"]}


def test_corrupt_lease_mid_sweep_is_reclaimed(tmp_path):
    """Scribbling garbage over a live lease file mid-sweep must not
    strand the cell: the reclaimer treats corrupt leases as expired and
    the (deterministic) cell completes on a later claim."""
    cells = cells_from_sweep(sweep_cells(("cholesky",), (2,)), scale=0.2)
    store = QueueStore.create(
        tmp_path / "q", cells, RunPolicy(), lease_ttl_s=30.0,
    )
    lease = store.claim("doomed")
    (tmp_path / "q" / "leased" / "cholesky@2.json").write_text("garbage")
    [event] = store.reclaim_expired()
    assert event.corrupt and event.key == "cholesky:2"
    # the zombie owner is fenced out (its token predates the reclaim)
    assert not store.complete(lease, {"status": "ok", "attempts": 1})

    serial = tmp_path / "serial.json"
    BatchRunner(
        policy=RunPolicy(), scale=0.2, journal=SweepJournal(str(serial)),
    ).run_sweep(sweep_cells(("cholesky",), (2,)))
    journal = tmp_path / "journal.json"
    report = run_queue_sweep(
        cells, workers=1, policy=RunPolicy(),
        journal=SweepJournal(str(journal)),
        resume=True, queue_dir=tmp_path / "q",
    )
    assert report.ok
    assert journal.read_bytes() == serial.read_bytes()
