"""Queue-sweep driver: journal byte-identity, resume, quarantine merge.

These tests run real worker subprocesses (the default spawn) over the
tiny fixture benchmark — fast enough for tier 1; the heavyweight chaos
scenarios live in ``test_chaos.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import BatchRunner, RunPolicy
from repro.observability.events import (
    CellFinished,
    CellQuarantined,
    EventBus,
    SweepFinished,
)
from repro.observability.metrics import MetricsRegistry
from repro.queue import POISON_CELL, QueueStore, run_queue_sweep
from repro.robustness.journal import SweepJournal

POLICY = RunPolicy(on_error="skip")


def _serial_journal(tmp_path, tiny_spec):
    path = tmp_path / "serial.json"
    BatchRunner(
        policy=POLICY, journal=SweepJournal(str(path)),
    ).run_sweep([(tiny_spec, 2), (tiny_spec, 4)])
    return path.read_bytes()


class TestQueueSweep:
    def test_journal_byte_identical_to_serial(
        self, tmp_path, tiny_spec, tiny_cells
    ):
        serial = _serial_journal(tmp_path, tiny_spec)
        journal = tmp_path / "queue.json"
        report = run_queue_sweep(
            tiny_cells, workers=2, policy=POLICY,
            journal=SweepJournal(str(journal)),
            queue_dir=tmp_path / "q",
        )
        assert report.ok and not report.interrupted
        assert [o.key for o in report.completed] == ["tiny:2", "tiny:4"]
        assert journal.read_bytes() == serial
        # ok outcomes expose the CLI's display surface
        stack = report.completed[0].result.stack
        assert stack.actual_speedup > 1.0

    def test_resume_skips_journaled_cells(self, tmp_path, tiny_cells):
        journal_path = tmp_path / "j.json"
        journal = SweepJournal(str(journal_path))
        journal.record_ok("tiny", 2, attempts=1, total_cycles=123)
        report = run_queue_sweep(
            tiny_cells, workers=1, policy=POLICY, journal=journal,
            resume=True, queue_dir=tmp_path / "q",
        )
        statuses = {o.key: o.status for o in report.outcomes}
        assert statuses == {"tiny:2": "resumed", "tiny:4": "ok"}
        # only the live cell ever entered the queue
        assert QueueStore(tmp_path / "q").order == ["tiny:4"]

    def test_existing_queue_requires_resume(
        self, tmp_path, tiny_cells, policy
    ):
        QueueStore.create(tmp_path / "q", tiny_cells, policy)
        with pytest.raises(ConfigError, match="--resume"):
            run_queue_sweep(
                tiny_cells, workers=1, policy=POLICY,
                queue_dir=tmp_path / "q",
            )

    def test_foreign_queue_rejected(self, tmp_path, tiny_cells, policy):
        QueueStore.create(tmp_path / "q", tiny_cells, policy)
        with pytest.raises(ConfigError, match="not in this sweep"):
            run_queue_sweep(
                tiny_cells[:1], workers=1, policy=POLICY, resume=True,
                queue_dir=tmp_path / "q",
            )

    def test_instrumented_journal_matches_serial(
        self, tmp_path, tiny_spec, tiny_cells
    ):
        """With metrics enabled, workers harvest per-cell sim.* metrics
        (the manifest's collect_metrics flag) so the journal still
        matches an instrumented serial run byte for byte."""
        serial_path = tmp_path / "serial.json"
        serial_metrics = MetricsRegistry()
        BatchRunner(
            policy=POLICY, journal=SweepJournal(str(serial_path)),
            metrics=serial_metrics,
        ).run_sweep([(tiny_spec, 2), (tiny_spec, 4)])

        queue_path = tmp_path / "queue.json"
        queue_metrics = MetricsRegistry()
        report = run_queue_sweep(
            tiny_cells, workers=2, policy=POLICY,
            journal=SweepJournal(str(queue_path)),
            metrics=queue_metrics,
            queue_dir=tmp_path / "q",
        )
        assert report.ok
        assert queue_path.read_bytes() == serial_path.read_bytes()
        sim = lambda reg: {  # noqa: E731
            k: v.value for k, v in reg.counters.items()
            if k.startswith("sim.")
        }
        assert sim(queue_metrics) == sim(serial_metrics) != {}

    def test_workers_must_be_positive(self, tmp_path, tiny_cells):
        with pytest.raises(ValueError, match="workers"):
            run_queue_sweep(
                tiny_cells, workers=0, queue_dir=tmp_path / "q",
            )


class TestQuarantineMerge:
    def test_poison_cell_reaches_journal_and_report(
        self, tmp_path, tiny_cells, policy
    ):
        """A cell quarantined by the reclaimer merges as a journal
        failure with the poison error type (no wall-clock: the store is
        driven to quarantine with explicit timestamps first)."""
        store = QueueStore.create(
            tmp_path / "q", tiny_cells, policy,
            lease_ttl_s=10.0, poison_after=1,
        )
        lease = store.claim("dead-worker", now=0.0)
        [event] = store.reclaim_expired(now=100.0)
        assert event.quarantined and lease.key == "tiny:2"

        bus = EventBus()
        quarantined, finished = [], []
        bus.subscribe(CellQuarantined, quarantined.append)
        bus.subscribe(CellFinished, finished.append)
        bus.subscribe(SweepFinished, lambda e: None)
        metrics = MetricsRegistry()
        journal_path = tmp_path / "j.json"
        report = run_queue_sweep(
            tiny_cells, workers=1, policy=policy,
            journal=SweepJournal(str(journal_path)),
            resume=True, queue_dir=tmp_path / "q",
            bus=bus, metrics=metrics,
        )
        assert not report.ok
        [failure] = report.failures
        assert failure.key == "tiny:2"
        assert failure.error_type == POISON_CELL
        assert "1 lease expiries" in failure.error
        assert "dead-worker" in failure.error
        entry = json.loads(journal_path.read_text())["cells"]["tiny:2"]
        assert entry["status"] == "failed"
        assert entry["error_type"] == POISON_CELL
        # the healthy sibling still completed normally
        assert [o.key for o in report.completed] == ["tiny:4"]
        assert metrics.counter("runtime.cells_failed").value == 1
        assert metrics.counter("runtime.cells_ok").value == 1
