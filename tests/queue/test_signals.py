"""Signal handling: SIGTERM/SIGINT drain with distinct exit codes.

Each test runs the real CLI in a subprocess, lets it get mid-cell,
delivers the signal, and asserts the documented exit code:

* ``repro stack`` / ``repro sweep`` — :data:`EXIT_INTERRUPTED` (95),
  work finalized (journal written) before exit;
* ``repro worker`` — :data:`EXIT_DRAINED` (75), lease released back to
  pending so another worker can pick the cell up.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.runner import RunPolicy
from repro.parallel import cells_from_sweep
from repro.queue import PENDING, QueueStore
from repro.robustness.drain import EXIT_DRAINED, EXIT_INTERRUPTED
from repro.workloads.suite import sweep_cells

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn(*argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env,
    )


def _signal_after(proc: subprocess.Popen, sig: int, delay_s: float = 2.0):
    """Deliver ``sig`` once the process has had time to get mid-cell,
    then wait for a prompt drain."""
    time.sleep(delay_s)
    assert proc.poll() is None, (
        f"process exited early (rc={proc.returncode}): {proc.stderr.read()}"
    )
    proc.send_signal(sig)
    try:
        return proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        pytest.fail("process ignored the drain signal for 60s")


class TestStackAndSweep:
    def test_sweep_sigterm_exits_interrupted(self, tmp_path):
        journal = tmp_path / "j.json"
        proc = _spawn(
            "sweep", "--benchmarks", "cholesky", "--threads", "2,4",
            "--scale", "10", "--journal", str(journal),
        )
        _, err = _signal_after(proc, signal.SIGTERM)
        assert proc.returncode == EXIT_INTERRUPTED
        assert "interrupted" in err
        # the journal was finalized on the way out (valid, loadable)
        assert isinstance(json.loads(journal.read_text())["cells"], dict)

    def test_stack_sigint_exits_interrupted(self):
        proc = _spawn("stack", "cholesky", "-n", "4", "--scale", "10")
        _, err = _signal_after(proc, signal.SIGINT)
        assert proc.returncode == EXIT_INTERRUPTED
        assert "interrupted" in err

    def test_stack_sigterm_saves_checkpoint(self, tmp_path):
        ckpt = tmp_path / "stack.ckpt"
        proc = _spawn(
            "stack", "cholesky", "-n", "4", "--scale", "10",
            "--checkpoint", str(ckpt), "--checkpoint-every", "5000",
        )
        _, err = _signal_after(proc, signal.SIGTERM)
        assert proc.returncode == EXIT_INTERRUPTED
        assert "checkpoint saved" in err
        assert ckpt.exists()


class TestWorkerDrain:
    def test_worker_sigterm_releases_lease_and_exits_75(
        self, tmp_path, tiny_spec
    ):
        cells = cells_from_sweep(
            sweep_cells(("cholesky",), (4,)), scale=10.0
        )
        store = QueueStore.create(
            tmp_path / "q", cells,
            RunPolicy(checkpoint_dir=str(tmp_path / "ckpt"),
                      checkpoint_every=5000),
            lease_ttl_s=30.0,
        )
        proc = _spawn("worker", str(tmp_path / "q"), "--worker-id", "wa")
        _, err = _signal_after(proc, signal.SIGTERM)
        assert proc.returncode == EXIT_DRAINED, err
        # the lease went back to pending — nothing is stranded and no
        # TTL has to expire before another worker picks the cell up
        assert store.state_of("cholesky:4") == PENDING
