"""Checkpoint resume under a stale lease (the PR's core guarantee).

Worker A claims a cell, checkpoints mid-run, and dies without
releasing its lease.  The reclaimer requeues the cell; worker B claims
it, finds A's config-hash-matched checkpoint on disk, and resumes from
A's last saved cycle — never from cycle 0 — producing a result
byte-identical to an uninterrupted serial run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.checkpoint import read_header
from repro.experiments.runner import BatchRunner, RunPolicy
from repro.parallel import cells_from_sweep
from repro.queue import (
    DONE,
    LEASED,
    PENDING,
    QueueStore,
    QueueWorker,
    run_queue_sweep,
)
from repro.queue.worker import KILL_AFTER_SAVE_EXIT
from repro.robustness.journal import SweepJournal
from repro.workloads.suite import sweep_cells

SRC = str(Path(__file__).resolve().parents[2] / "src")
SCALE = 0.2
CHECKPOINT_EVERY = 5_000


def _policy(tmp_path) -> RunPolicy:
    return RunPolicy(
        checkpoint_dir=str(tmp_path / "ckpt"),
        checkpoint_every=CHECKPOINT_EVERY,
    )


def test_worker_b_resumes_worker_a_checkpoint(tmp_path):
    cells = cells_from_sweep(sweep_cells(("cholesky",), (4,)), scale=SCALE)
    store = QueueStore.create(
        tmp_path / "q", cells, _policy(tmp_path), lease_ttl_s=5.0,
    )

    # --- worker A: claims, saves at the first checkpoint interval,
    # dies on the spot (never releases, never completes) ---------------
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_TEST_KILL_AFTER_SAVE"] = "cholesky:4"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "worker", str(tmp_path / "q"),
         "--worker-id", "wa"],
        env=env, capture_output=True, timeout=120,
    )
    assert proc.returncode == KILL_AFTER_SAVE_EXIT

    # A's corpse: a stale lease and a mid-run checkpoint
    assert store.state_of("cholesky:4") == LEASED
    ckpt = Path(store.policy.checkpoint_dir) / "cholesky_n4.ckpt"
    saved_cycle = read_header(ckpt)["cycle"]
    assert saved_cycle >= CHECKPOINT_EVERY

    # --- the reclaimer notices the expired lease and requeues ---------
    [event] = store.reclaim_expired(now=time.time() + 6.0)
    assert event.key == "cholesky:4" and event.worker == "wa"
    assert store.state_of("cholesky:4") == PENDING
    # collapse the requeue backoff so worker B claims immediately
    pending = tmp_path / "q" / "pending" / "cholesky@4.json"
    record = json.loads(pending.read_text())
    record["not_before"] = 0.0
    pending.write_text(json.dumps(record))

    # --- worker B: picks the cell up mid-flight -----------------------
    assert QueueWorker(store, worker_id="wb").run() == 0
    done = store.result("cholesky:4")
    assert done["status"] == "ok"
    # the proof it resumed A's run instead of starting over
    assert done["resumed_from_cycle"] == saved_cycle > 0

    # --- and the spliced A+B run is byte-identical to serial ----------
    serial = tmp_path / "serial.json"
    BatchRunner(
        policy=RunPolicy(), scale=SCALE,
        journal=SweepJournal(str(serial)),
    ).run_sweep(sweep_cells(("cholesky",), (4,)))
    queue_journal = tmp_path / "queue.json"
    report = run_queue_sweep(
        cells, workers=1, policy=store.policy,
        journal=SweepJournal(str(queue_journal)),
        resume=True, queue_dir=tmp_path / "q",
    )
    assert report.ok
    assert store.state_of("cholesky:4") == DONE
    assert queue_journal.read_bytes() == serial.read_bytes()
