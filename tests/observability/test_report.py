"""Tests for the ``repro report`` HTML health report."""

from __future__ import annotations

import json

from repro.observability.report import (
    load_report_data,
    render_report_html,
    write_report,
)


def make_cell(key, **overrides):
    cell = {
        "key": key,
        "status": "ok",
        "attempts": 1,
        "error_type": None,
        "wall_s": 1.0,
        "spans": None,
        "actual_speedup": 1.5,
        "estimated_speedup": 1.4,
        "stack_segments": None,
        "resumed_from_cycle": None,
    }
    cell.update(overrides)
    return cell


def spans_for(key, wall_us=1_000_000):
    return [
        {"id": 0, "parent": None, "name": "queue.run", "cat": "queue",
         "t0_us": 0, "dur_us": wall_us, "origin": "w-1"},
        {"id": 1, "parent": 0, "name": key, "cat": "cell",
         "t0_us": 100, "dur_us": wall_us - 200, "origin": "w-1"},
        {"id": 2, "parent": 1, "name": "engine.advance", "cat": "cell",
         "t0_us": 200, "dur_us": wall_us // 2, "origin": "w-1"},
    ]


class TestRenderQueueShaped:
    def data(self):
        return {
            "source": "/tmp/queue",
            "kind": "queue",
            "cells": [
                make_cell(
                    "fft:2", wall_s=1.0, spans=spans_for("fft:2"),
                    stack_segments={"LLC interference": 0.4,
                                    "spinning": 0.2},
                ),
                make_cell(
                    "lud:2", wall_s=3.0,
                    spans=spans_for("lud:2", wall_us=3_000_000),
                    resumed_from_cycle=50_000,
                ),
                make_cell("bfs:2", status="quarantined", attempts=3,
                          wall_s=None, actual_speedup=None,
                          estimated_speedup=None),
            ],
            "heartbeats": {
                "w-1": [
                    {"timestamp": 100.0, "current_cell": "fft:2"},
                    {"timestamp": 101.0, "current_cell": None},
                    {"timestamp": 109.0, "current_cell": "lud:2"},
                ],
            },
        }

    def test_report_contains_every_section(self):
        document = render_report_html(self.data())
        for heading in (
            "Health", "Per-cell wall clock", "Span waterfall",
            "Worker utilization", "Speedup stacks", "Cells",
        ):
            assert heading in document
        assert document.startswith("<!doctype html>")
        assert "<script" not in document  # self-contained, no JS

    def test_counts_and_badges(self):
        document = render_report_html(self.data())
        assert "quarantined" in document
        assert "crash-resumed" in document
        assert "crash-resumed from cycle 50000" in document

    def test_waterfall_orders_slowest_first_and_escapes(self):
        data = self.data()
        data["cells"][0]["spans"][1]["name"] = "<script>alert(1)</script>"
        document = render_report_html(data)
        assert "<script>alert(1)</script>" not in document
        assert "&lt;script&gt;" in document
        # lud:2 (3s) must appear before fft:2 (1s) in the waterfall
        waterfall = document[document.index("Span waterfall"):]
        assert waterfall.index("lud:2") < waterfall.index("fft:2")

    def test_worker_strip_shows_busy_and_idle(self):
        document = render_report_html(self.data())
        strip = document[document.index("Worker utilization"):]
        assert "w-1" in strip
        assert "█" in strip  # busy heartbeat
        assert "░" in strip  # idle heartbeat

    def test_stack_section_renders_components(self):
        document = render_report_html(self.data())
        stacks = document[document.index("Speedup stacks"):]
        assert "LLC interference" in stacks
        assert "spinning" in stacks


class TestJournalSource:
    def test_journal_degrades_gracefully(self, tmp_path):
        journal = tmp_path / "journal.json"
        journal.write_text(json.dumps({
            "version": 1,
            "cells": {
                "fft:2": {"status": "ok", "attempts": 1,
                          "total_cycles": 123, "truncated": False},
                "lud:2": {"status": "failed", "attempts": 2,
                          "error_type": "SimDeadlockError"},
            },
        }))
        data = load_report_data(journal)
        assert data["kind"] == "journal"
        assert len(data["cells"]) == 2
        document = render_report_html(data)
        assert "no wall-clock data" in document
        assert "no spans recorded" in document
        assert "no worker heartbeat history" in document
        assert "fft:2" in document

    def test_write_report_creates_file(self, tmp_path):
        journal = tmp_path / "journal.json"
        journal.write_text(json.dumps({"version": 1, "cells": {}}))
        out = tmp_path / "report.html"
        data = write_report(journal, out)
        assert out.exists()
        assert data["cells"] == []
        assert "<h1>" in out.read_text()


class TestQueueSource:
    def test_real_queue_sweep_report(self, tmp_path):
        from repro.experiments.runner import RunPolicy
        from repro.queue import run_queue_sweep
        from repro.observability.spans import SpanRecorder
        from repro.parallel import CellSpec
        from repro.robustness.journal import SweepJournal
        from repro.workloads.suite import by_name

        spans = SpanRecorder()
        report = run_queue_sweep(
            [CellSpec(by_name("fft"), 2, scale=0.05)],
            workers=1,
            policy=RunPolicy(
                checkpoint_dir=str(tmp_path / "ckpt"),
            ),
            journal=SweepJournal(str(tmp_path / "journal.json")),
            spans=spans,
            queue_dir=tmp_path / "queue",
        )
        assert report.ok
        data = load_report_data(tmp_path / "queue")
        assert data["kind"] == "queue"
        (cell,) = data["cells"]
        assert cell["status"] == "ok"
        assert cell["wall_s"] is not None and cell["wall_s"] > 0
        assert cell["stack_segments"]
        assert any(
            row["name"] == "queue.claim" for row in cell["spans"]
        )
        document = render_report_html(data)
        assert "fft:2" in document
        assert "queue.run" in document
