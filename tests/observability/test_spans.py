"""Unit tests for the hierarchical span recorder."""

from __future__ import annotations

import threading

import pytest

from repro.observability.spans import (
    SpanRecorder,
    maybe_span,
    span_roots,
    validate_span_rows,
)


def ticking_clock(step_ns=1000):
    """A deterministic monotonic clock advancing ``step_ns`` per call."""
    state = {"now": 0}

    def clock():
        state["now"] += step_ns
        return state["now"]

    return clock


def make_recorder(**kwargs):
    kwargs.setdefault("clock", ticking_clock())
    kwargs.setdefault("epoch_ns", 0)
    return SpanRecorder(**kwargs)


class TestRecording:
    def test_nested_spans_link_to_innermost_parent(self):
        recorder = make_recorder()
        with recorder.span("outer") as outer_id:
            with recorder.span("inner") as inner_id:
                pass
        rows = {row["name"]: row for row in recorder.to_dicts()}
        assert rows["outer"]["parent"] is None
        assert rows["inner"]["parent"] == outer_id
        assert inner_id != outer_id

    def test_explicit_parent_none_forces_root(self):
        recorder = make_recorder()
        with recorder.span("outer"):
            root_id = recorder.start("forced-root", parent=None)
            recorder.finish(root_id)
        rows = {row["name"]: row for row in recorder.to_dicts()}
        assert rows["forced-root"]["parent"] is None

    def test_rows_carry_fixed_key_order_and_origin(self):
        recorder = make_recorder(origin="w-1")
        with recorder.span("a", cat="queue", key="fft:2"):
            pass
        (row,) = recorder.to_dicts()
        assert list(row) == [
            "id", "parent", "name", "cat", "t0_us", "dur_us",
            "origin", "args",
        ]
        assert row["origin"] == "w-1"
        assert row["args"] == {"key": "fft:2"}

    def test_finish_is_idempotent_and_tolerates_unknown_ids(self):
        recorder = make_recorder()
        span_id = recorder.start("a")
        recorder.finish(span_id)
        first = recorder.to_dicts()[0]["dur_us"]
        recorder.finish(span_id)
        recorder.finish(999)
        assert recorder.to_dicts()[0]["dur_us"] == first

    def test_open_spans_export_with_elapsed_duration(self):
        recorder = make_recorder()
        recorder.start("still-open")
        (row,) = recorder.to_dicts()
        assert row["dur_us"] >= 0

    def test_record_is_retroactive_and_thread_stack_free(self):
        recorder = make_recorder()
        with recorder.span("outer"):
            t0 = recorder.now_us()
            recorder.record("side", "queue", t0, 5)
        rows = {row["name"]: row for row in recorder.to_dicts()}
        # record() never consults the thread stack: no parent unless
        # explicitly given
        assert rows["side"]["parent"] is None
        assert rows["side"]["dur_us"] == 5

    def test_thread_local_parent_stacks(self):
        recorder = make_recorder()
        seen = {}

        def other_thread():
            with recorder.span("thread-b") as span_id:
                seen["id"] = span_id

        with recorder.span("thread-a"):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        rows = {row["name"]: row for row in recorder.to_dicts()}
        # the other thread's span must not adopt thread-a as a parent
        assert rows["thread-b"]["parent"] is None

    def test_maybe_span_noop_on_none(self):
        with maybe_span(None, "anything") as span_id:
            assert span_id is None
        recorder = make_recorder()
        with maybe_span(recorder, "real") as span_id:
            assert span_id is not None
        assert len(recorder) == 1


class TestMerge:
    def test_absorb_remaps_ids_and_preserves_internal_links(self):
        worker = make_recorder(origin="w-7")
        with worker.span("queue.run"):
            with worker.span("cell"):
                pass
        parent_side = make_recorder()
        merge_id = parent_side.start("queue.merge")
        parent_side.absorb(worker.to_dicts(), parent=merge_id)
        parent_side.finish(merge_id)
        rows = {row["name"]: row for row in parent_side.to_dicts()}
        assert rows["queue.run"]["parent"] == rows["queue.merge"]["id"]
        assert rows["cell"]["parent"] == rows["queue.run"]["id"]
        assert rows["cell"]["origin"] == "w-7"
        ids = [row["id"] for row in parent_side.to_dicts()]
        assert len(ids) == len(set(ids))

    def test_subtree_is_self_contained(self):
        recorder = make_recorder()
        with recorder.span("chunk"):
            with recorder.span("cell-a") as cell_a:
                with recorder.span("phase"):
                    pass
            with recorder.span("cell-b"):
                pass
        rows = recorder.subtree(cell_a)
        names = {row["name"] for row in rows}
        assert names == {"cell-a", "phase"}
        assert span_roots(rows)[0]["name"] == "cell-a"
        assert validate_span_rows(rows) == []

    def test_absorbed_document_validates(self):
        worker = make_recorder(origin="w-1")
        with worker.span("queue.run"):
            pass
        merged = make_recorder()
        merged.absorb(worker.to_dicts())
        assert validate_span_rows(merged.to_dicts()) == []


class TestValidation:
    def test_valid_document(self):
        recorder = make_recorder()
        with recorder.span("a"):
            with recorder.span("b"):
                pass
        assert validate_span_rows(recorder.to_dicts()) == []

    @pytest.mark.parametrize("mutation,fragment", [
        (lambda rows: rows[1].update(id=rows[0]["id"]), "duplicate id"),
        (lambda rows: rows[1].update(parent=999), "not a previously seen"),
        (lambda rows: rows[0].update(t0_us=-1), "negative t0_us"),
        (lambda rows: rows[0].update(dur_us=-5), "negative dur_us"),
        (lambda rows: rows[0].pop("name"), "bad 'name'"),
        (lambda rows: rows[0].update(origin=7), "bad 'origin'"),
    ])
    def test_invalid_documents(self, mutation, fragment):
        recorder = make_recorder()
        with recorder.span("a"):
            with recorder.span("b"):
                pass
        rows = recorder.to_dicts()
        mutation(rows)
        problems = validate_span_rows(rows)
        assert any(fragment in problem for problem in problems), problems

    def test_child_before_same_origin_parent_flagged(self):
        rows = [
            {"id": 0, "parent": None, "name": "p", "cat": "runner",
             "t0_us": 100, "dur_us": 10, "origin": "main"},
            {"id": 1, "parent": 0, "name": "c", "cat": "runner",
             "t0_us": 50, "dur_us": 5, "origin": "main"},
        ]
        assert any(
            "precedes its parent" in p for p in validate_span_rows(rows)
        )

    def test_cross_origin_child_may_precede_parent(self):
        # worker epochs differ from the parent's; no ordering claim holds
        rows = [
            {"id": 0, "parent": None, "name": "merge", "cat": "queue",
             "t0_us": 100, "dur_us": 10, "origin": "main"},
            {"id": 1, "parent": 0, "name": "run", "cat": "queue",
             "t0_us": 3, "dur_us": 5, "origin": "w-1"},
        ]
        assert validate_span_rows(rows) == []
