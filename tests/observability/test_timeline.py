"""Timeline recorder: reconciliation with ground truth, trace-event
validity, and the golden Chrome-trace fixture.

The golden cell matches ``tests/golden``'s cholesky:2 pin (SCALE=0.2,
MAX_CYCLES=20M) so the trace is cross-checked against the same stack
fixture: total cycles and actual speedup must agree exactly.

After an *intended* engine/scheduling change, regenerate with::

    PYTHONPATH=src python -m pytest tests/observability --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.observability.events import EventBus, SimEnded, SimStarted
from repro.observability.timeline import (
    TRACK_NAMES,
    TimelineRecorder,
    interval_sums,
    trace_cell,
    validate_trace_events,
)

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN_CELL = ("cholesky", 2)
SCALE = 0.2
MAX_CYCLES = 20_000_000


@pytest.fixture(scope="module")
def traced():
    result, recorder = trace_cell(
        GOLDEN_CELL[0], GOLDEN_CELL[1], scale=SCALE, max_cycles=MAX_CYCLES,
    )
    return result, recorder


class TestReconciliation:
    def test_spin_segments_tile_ground_truth(self, traced):
        result, recorder = traced
        sums = interval_sums(recorder)
        gt = {
            thread.tid: thread.gt_spin_cycles
            for thread in result.mt_result.threads
            if thread.gt_spin_cycles
        }
        assert sums["spin_cycles_by_thread"] == gt

    def test_yield_intervals_tile_ground_truth(self, traced):
        result, recorder = traced
        sums = interval_sums(recorder)
        gt = {
            thread.tid: thread.gt_yield_cycles
            for thread in result.mt_result.threads
            if thread.gt_yield_cycles
        }
        assert sums["yield_cycles_by_thread"] == gt

    def test_interference_matches_accountant_raw_counters(self, traced):
        result, recorder = traced
        sums = interval_sums(recorder)
        for raw in result.report.cores:
            assert (
                sums["interference_by_core"].get(raw.core_id, 0)
                == raw.memory_interference_stall
            )

    def test_load_miss_windows_match_blocked_stall(self, traced):
        result, recorder = traced
        blocked = {}
        for core, start, end, _, is_load in recorder.miss_intervals:
            if is_load:
                blocked[core] = blocked.get(core, 0) + (end - start)
        for raw in result.report.cores:
            assert (
                blocked.get(raw.core_id, 0)
                == raw.llc_load_miss_blocked_stall
            )

    def test_run_intervals_end_at_thread_end_times(self, traced):
        result, recorder = traced
        sums = interval_sums(recorder)
        for thread in result.mt_result.threads:
            assert sums["last_run_end_by_thread"][thread.tid] == (
                thread.end_time
            )

    def test_total_cycles_recorded(self, traced):
        result, recorder = traced
        assert recorder.total_cycles == result.mt_result.total_cycles
        assert not recorder.truncated

    def test_attaching_a_recorder_does_not_perturb_the_run(self, traced):
        from repro.config import MachineConfig
        from repro.sim.engine import Simulation
        from repro.workloads.spec import build_program
        from repro.workloads.suite import by_name

        result, _ = traced
        spec = by_name(GOLDEN_CELL[0])
        machine = MachineConfig(n_cores=GOLDEN_CELL[1])
        bare = Simulation(
            machine, build_program(spec, GOLDEN_CELL[1], scale=SCALE)
        ).run()
        assert bare.total_cycles == result.mt_result.total_cycles


class TestTruncatedRuns:
    def test_open_intervals_closed_at_cut_point(self):
        bus = EventBus()
        recorder = TimelineRecorder().attach(bus)
        from repro.observability.events import ThreadDispatched

        bus.emit(SimStarted(2, 2))
        bus.emit(ThreadDispatched(tid=0, core=0, t=100))
        bus.emit(SimEnded(total_cycles=500, total_instrs=1,
                          truncated=True, reason="watchdog"))
        assert recorder.truncated
        assert recorder.run_intervals == [(0, 0, 100, 500, "truncated")]


class TestExportValidity:
    def test_validate_accepts_our_export(self, traced):
        _, recorder = traced
        doc = json.loads(recorder.to_chrome_trace())
        assert validate_trace_events(doc) == []

    def test_validate_rejects_malformed_documents(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"traceEvents": 3}) != []
        bad_event = {"traceEvents": [
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": -1, "dur": 1}
        ]}
        assert any("bad ts" in p for p in validate_trace_events(bad_event))

    def test_every_core_gets_named_tracks(self, traced):
        _, recorder = traced
        events = recorder.to_trace_events()
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for core in range(recorder.n_cores):
            for track, label in TRACK_NAMES.items():
                assert names[(core, track)] == label


class TestGoldenTrace:
    def test_golden_chrome_trace(self, traced, request):
        _, recorder = traced
        actual = json.loads(recorder.to_chrome_trace())
        path = FIXTURES / (
            f"trace_{GOLDEN_CELL[0]}_n{GOLDEN_CELL[1]}.json"
        )
        if request.config.getoption("--update-golden"):
            FIXTURES.mkdir(exist_ok=True)
            path.write_text(json.dumps(actual, indent=1) + "\n")
            pytest.skip(f"golden trace rewritten: {path.name}")
        assert path.exists(), (
            f"missing golden trace {path}; generate with --update-golden"
        )
        expected = json.loads(path.read_text())
        assert actual["traceEvents"] == expected["traceEvents"]

    def test_golden_trace_reconciles_with_golden_stack(self, traced):
        """The trace and the golden *stack* fixture pin the same cell —
        their shared observables must agree exactly."""
        stack_fixture = (
            Path(__file__).parent.parent / "golden" / "fixtures"
            / f"{GOLDEN_CELL[0]}_n{GOLDEN_CELL[1]}.json"
        )
        stack = json.loads(stack_fixture.read_text())
        result, recorder = traced
        assert recorder.total_cycles == stack["tp_cycles"]
        assert result.stack.actual_speedup == pytest.approx(
            stack["actual_speedup"]
        )
        # threads with spin/yield cycles in the trace imply non-zero
        # spinning/yielding components in the stack, and vice versa
        sums = interval_sums(recorder)
        assert bool(sums["spin_cycles_by_thread"]) == (
            stack["components"]["spinning"] > 0
        )
        assert bool(sums["yield_cycles_by_thread"]) == (
            stack["components"]["yielding"] > 0
        )
