"""Journal byte-identity under observability.

The sweep journal is the repo's resume/differential anchor: with
observability *disabled* it must be byte-identical to the pre-metrics
format (no ``metrics`` key, same bytes run-to-run), and with metrics
*enabled* the deterministic ``sim.*`` payload must journal identically
from a serial and a ``--jobs 2`` sweep.
"""

from __future__ import annotations

import json

from repro.experiments.runner import BatchRunner, RunPolicy
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import SpanRecorder
from repro.parallel import CellSpec, run_parallel_sweep
from repro.robustness.journal import SweepJournal
from repro.workloads.suite import by_name

SCALE = 0.1
CELLS = [("cholesky", 2), ("fft", 2)]


def serial_journal(path, metrics=None, spans=None):
    journal = SweepJournal(str(path))
    runner = BatchRunner(
        policy=RunPolicy(), scale=SCALE, journal=journal, metrics=metrics,
        spans=spans,
    )
    runner.run_sweep([(by_name(name), n) for name, n in CELLS])
    return path.read_bytes()


def parallel_journal(path, metrics=None, spans=None):
    journal = SweepJournal(str(path))
    run_parallel_sweep(
        [CellSpec(by_name(name), n, scale=SCALE) for name, n in CELLS],
        jobs=2, policy=RunPolicy(), journal=journal, metrics=metrics,
        spans=spans,
    )
    return path.read_bytes()


class TestDisabledPath:
    def test_serial_journal_is_reproducible_and_metrics_free(self, tmp_path):
        bytes_1 = serial_journal(tmp_path / "a.json")
        bytes_2 = serial_journal(tmp_path / "b.json")
        assert bytes_1 == bytes_2
        doc = json.loads(bytes_1)
        for entry in doc["cells"].values():
            assert "metrics" not in entry
            assert set(entry) == {
                "status", "attempts", "total_cycles", "truncated"
            }

    def test_parallel_journal_matches_serial(self, tmp_path):
        assert (serial_journal(tmp_path / "serial.json")
                == parallel_journal(tmp_path / "parallel.json"))


class TestEnabledPath:
    def test_metrics_enabled_keeps_results_identical(self, tmp_path):
        plain = json.loads(serial_journal(tmp_path / "plain.json"))
        with_metrics = json.loads(
            serial_journal(tmp_path / "metrics.json", MetricsRegistry())
        )
        for key, entry in plain["cells"].items():
            enriched = dict(with_metrics["cells"][key])
            metrics = enriched.pop("metrics")
            assert enriched == entry  # only the metrics key is new
            assert metrics["sim.total_cycles"] == entry["total_cycles"]

    def test_serial_and_parallel_journal_identical_with_metrics(
        self, tmp_path
    ):
        assert (
            serial_journal(tmp_path / "serial.json", MetricsRegistry())
            == parallel_journal(tmp_path / "parallel.json",
                                MetricsRegistry())
        )


class TestSpansDifferential:
    """Spans are wall-clock, so enabling them must leave journal bytes
    untouched — for the serial runner and for ``--jobs 2`` (where
    worker spans travel inside the chunk payload)."""

    def test_serial_journal_unchanged_by_spans(self, tmp_path):
        plain = serial_journal(tmp_path / "plain.json")
        recorder = SpanRecorder()
        with_spans = serial_journal(tmp_path / "spans.json", spans=recorder)
        assert with_spans == plain
        assert len(recorder) > 0  # spans actually recorded

    def test_parallel_journal_unchanged_by_spans(self, tmp_path):
        plain = parallel_journal(tmp_path / "plain.json")
        recorder = SpanRecorder()
        with_spans = parallel_journal(
            tmp_path / "spans.json", spans=recorder
        )
        assert with_spans == plain
        # worker-side cell spans crossed the process boundary and were
        # absorbed under the parent's chunk.dispatch spans
        names = {row["name"] for row in recorder.to_dicts()}
        assert "chunk.dispatch" in names
        assert "engine.advance" in names

    def test_spans_and_metrics_together_add_only_metrics(self, tmp_path):
        with_metrics = serial_journal(
            tmp_path / "metrics.json", MetricsRegistry()
        )
        both = serial_journal(
            tmp_path / "both.json", MetricsRegistry(), SpanRecorder()
        )
        assert both == with_metrics
