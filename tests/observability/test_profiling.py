"""Unit tests for the deterministic self-profiler."""

from __future__ import annotations

import pytest

from repro.observability.profiling import (
    ENGINE_PREFIX,
    DeterministicProfiler,
)


def ticking_clock(step_ns=1_000_000):
    state = {"now": 0}

    def clock():
        state["now"] += step_ns
        return state["now"]

    return clock


def leaf():
    return sum(range(10))


def caller():
    return leaf() + leaf()


class TestCapture:
    def test_captures_nested_call_stacks(self):
        profiler = DeterministicProfiler(clock=ticking_clock())
        with profiler:
            caller()
        paths = {";".join(path) for path in profiler.stacks}
        assert any(path.endswith("caller;" + __name__ + ".leaf")
                   for path in paths), paths
        assert profiler.calls[f"{__name__}.leaf"] == 2
        assert profiler.calls[f"{__name__}.caller"] == 1

    def test_collapsed_lines_are_sorted_and_formatted(self):
        profiler = DeterministicProfiler(clock=ticking_clock())
        with profiler:
            caller()
        lines = profiler.collapsed()
        assert lines == sorted(lines)
        for line in lines:
            path, _, amount = line.rpartition(" ")
            assert path
            assert int(amount) > 0

    def test_profile_is_deterministic_for_deterministic_code(self):
        def run():
            profiler = DeterministicProfiler(clock=ticking_clock())
            with profiler:
                caller()
            return set(profiler.stacks)

        assert run() == run()

    def test_nesting_rejected_and_stop_idempotent(self):
        profiler = DeterministicProfiler(clock=ticking_clock())
        profiler.start()
        with pytest.raises(RuntimeError):
            profiler.start()
        profiler.stop()
        profiler.stop()


class TestReporting:
    def test_top_functions_ranked_by_self_time(self):
        profiler = DeterministicProfiler(clock=ticking_clock())
        profiler.stacks = {("a",): 5_000_000, ("a", "b"): 10_000_000}
        profiler.calls = {"a": 1, "b": 3}
        top = profiler.top_functions(2)
        assert [entry["function"] for entry in top] == ["b", "a"]
        assert top[0]["calls"] == 3
        assert top[0]["self_us"] == 10_000
        assert top[0]["self_pct"] == pytest.approx(66.67, abs=0.01)

    def test_pct_in_prefix_counts_leaf_functions_only(self):
        profiler = DeterministicProfiler()
        profiler.stacks = {
            ("x", "repro.sim.engine.Simulation.run"): 3_000_000,
            ("repro.sim.engine.Simulation.run", "x"): 1_000_000,
        }
        assert profiler.pct_in_prefix(ENGINE_PREFIX) == 75.0

    def test_profile_section_shape(self):
        profiler = DeterministicProfiler(clock=ticking_clock())
        with profiler:
            caller()
        section = profiler.profile_section(top_n=3)
        assert section["profiler"] == "deterministic (sys.setprofile)"
        assert section["engine_prefix"] == ENGINE_PREFIX
        assert section["total_self_us"] > 0
        assert section["distinct_stacks"] == len(profiler.stacks)
        assert len(section["top_functions"]) <= 3

    def test_engine_run_dominates_a_real_cell(self):
        # the structural CI assertion: profiling an actual simulation
        # shows the engine package on the hot path
        from repro.experiments.runner import BatchRunner, RunPolicy
        from repro.workloads.suite import by_name

        runner = BatchRunner(policy=RunPolicy(), scale=0.05)
        profiler = DeterministicProfiler()
        with profiler:
            runner.run_cell(by_name("fft"), 2)
        assert profiler.pct_in_prefix("repro.sim.") > 10.0
        assert any(
            key.startswith(ENGINE_PREFIX) for key in profiler.calls
        )
