"""ProgressReporter: rendered lines, ETA, and the heartbeat file."""

from __future__ import annotations

import io
import json

from repro.observability.events import (
    CellFinished,
    CellRetry,
    CellStarted,
    ChunkDispatched,
    ChunkFinished,
    EventBus,
    SweepFinished,
    SweepStarted,
    WorkerCrashed,
    WorkerHeartbeat,
)
from repro.observability.progress import ProgressReporter, _fmt_duration


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def reporter_with_bus(
    n_cells=4, jobs=2, heartbeat_path=None, heartbeat_log_path=None
):
    bus = EventBus()
    stream = io.StringIO()
    clock = FakeClock()
    reporter = ProgressReporter(
        n_cells, jobs=jobs, stream=stream,
        heartbeat_path=heartbeat_path,
        heartbeat_log_path=heartbeat_log_path,
        clock=clock, wall_clock=clock,
    ).attach(bus)
    return bus, reporter, stream, clock


class TestRendering:
    def test_lifecycle_counts(self):
        bus, reporter, stream, clock = reporter_with_bus()
        bus.emit(SweepStarted(4, 2))
        bus.emit(CellStarted("a:2", 1))
        clock.t = 2.0
        bus.emit(CellFinished("a:2", "ok", 1))
        bus.emit(CellFinished("b:2", "resumed", 0))
        bus.emit(CellStarted("c:2", 1))
        bus.emit(CellFinished("c:2", "failed", 1))
        assert reporter.ok == 1
        assert reporter.resumed == 1
        assert reporter.failed == 1
        assert reporter.done == 3
        last = stream.getvalue().splitlines()[-1]
        assert "sweep 3/4" in last and "failed=1" in last

    def test_active_cells_shown_with_age(self):
        bus, _, stream, clock = reporter_with_bus()
        bus.emit(CellStarted("slow:16", 1))
        clock.t = 3.0
        bus.emit(CellStarted("quick:2", 1))
        assert "active: quick:2 (0.0s), slow:16 (3.0s)" in (
            stream.getvalue().splitlines()[-1]
        )

    def test_retry_and_crash_counters(self):
        bus, reporter, stream, _ = reporter_with_bus()
        bus.emit(CellRetry("a:2", 2, 0.5, "boom"))
        bus.emit(WorkerCrashed(("a:2", "b:2")))
        assert reporter.retries == 1 and reporter.crashes == 1
        assert "crashes=1" in stream.getvalue().splitlines()[-1]

    def test_sweep_finished_flushes_final_line(self):
        bus, _, stream, _ = reporter_with_bus()
        bus.emit(SweepFinished(4, 0, 0))
        assert "finished" in stream.getvalue()


class TestEta:
    def test_no_eta_until_a_cell_finishes(self):
        _, reporter, _, _ = reporter_with_bus()
        assert reporter.eta_seconds() is None

    def test_eta_is_mean_duration_scaled_by_remaining_over_jobs(self):
        bus, reporter, _, clock = reporter_with_bus(n_cells=5, jobs=2)
        bus.emit(CellStarted("a:2", 1))
        clock.t = 4.0
        bus.emit(CellFinished("a:2", "ok", 1))
        # one 4s cell done, 4 remaining over 2 workers -> 8s
        assert reporter.eta_seconds() == 8.0

    def test_eta_zero_once_all_done(self):
        bus, reporter, _, clock = reporter_with_bus(n_cells=1, jobs=1)
        bus.emit(CellStarted("a:2", 1))
        clock.t = 1.0
        bus.emit(CellFinished("a:2", "ok", 1))
        assert reporter.eta_seconds() == 0.0


class TestChunkedEta:
    """Under chunked dispatch per-cell durations are chunk-granular, so
    the reporter must switch to completed-cell throughput."""

    def chunked_bus(self, n_cells=8, jobs=2):
        bus, reporter, stream, clock = reporter_with_bus(
            n_cells=n_cells, jobs=jobs,
        )
        bus.emit(SweepStarted(n_cells, jobs))
        bus.emit(ChunkDispatched("c0", ("a:2", "b:2", "c:2", "d:2"), 4.0))
        return bus, reporter, stream, clock

    def test_throughput_eta_after_chunk_results(self):
        bus, reporter, _, clock = self.chunked_bus()
        # a whole 4-cell chunk lands at t=8: each cell *looks* 8s old,
        # but the true rate is 4 cells / 8s
        for key in ("a:2", "b:2", "c:2", "d:2"):
            bus.emit(CellStarted(key, 1))
        clock.t = 8.0
        for key in ("a:2", "b:2", "c:2", "d:2"):
            bus.emit(CellFinished(key, "ok", 1))
        # 4 remaining at 2s/cell completed-cell throughput -> 8s, where
        # the mean-duration formula would have said 8s*4/2 jobs = 16s
        assert reporter.eta_seconds() == 8.0

    def test_no_eta_before_any_cell_completes(self):
        _, reporter, _, clock = self.chunked_bus()
        clock.t = 5.0
        assert reporter.eta_seconds() is None

    def test_zero_eta_when_done(self):
        bus, reporter, _, clock = self.chunked_bus(n_cells=4)
        for key in ("a:2", "b:2", "c:2", "d:2"):
            bus.emit(CellFinished(key, "ok", 1))
        bus.emit(ChunkFinished("c0", 4, 4, 0))
        assert reporter.eta_seconds() == 0.0

    def test_chunk_counters_rendered(self):
        bus, _, stream, _ = self.chunked_bus()
        bus.emit(ChunkFinished("c0", 4, 4, 0))
        assert "chunks=1/1" in stream.getvalue().splitlines()[-1]


class TestWorkerHeartbeats:
    def test_heartbeat_ages_in_line(self):
        bus, reporter, stream, clock = reporter_with_bus()
        clock.t = 10.0
        bus.emit(WorkerHeartbeat("w0", 10.0, "a:2"))
        bus.emit(WorkerHeartbeat("w1", 10.0, None))
        clock.t = 13.5
        bus.emit(CellStarted("a:2", 1))
        last = stream.getvalue().splitlines()[-1]
        assert "hb w0=3.5s w1=3.5s" in last

    def test_heartbeats_refresh_file_without_printing(self, tmp_path):
        path = tmp_path / "hb.json"
        bus, _, stream, clock = reporter_with_bus(heartbeat_path=str(path))
        clock.t = 5.0
        bus.emit(WorkerHeartbeat("w0", 4.0, "a:2"))
        assert stream.getvalue() == ""  # no stderr line for a heartbeat
        doc = json.loads(path.read_text())
        assert doc["workers"] == {
            "w0": {"age_s": 1.0, "current_cell": "a:2"},
        }

    def test_heartbeat_log_appends_history(self, tmp_path):
        log = tmp_path / "hb.jsonl"
        bus, _, _, clock = reporter_with_bus(
            heartbeat_log_path=str(log),
        )
        bus.emit(CellStarted("a:2", 1))
        clock.t = 1.0
        bus.emit(CellFinished("a:2", "ok", 1))
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["done"] == 0 and lines[1]["done"] == 1
        # history is valid under the artifact validator's rules
        assert lines[0]["timestamp"] <= lines[1]["timestamp"]


class TestHeartbeat:
    def test_heartbeat_file_tracks_state(self, tmp_path):
        path = tmp_path / "heartbeat.json"
        bus, _, _, clock = reporter_with_bus(heartbeat_path=str(path))
        bus.emit(SweepStarted(4, 2))
        bus.emit(CellStarted("a:2", 1))
        clock.t = 1.5
        bus.emit(CellFinished("a:2", "ok", 1))
        doc = json.loads(path.read_text())
        assert doc["total"] == 4
        assert doc["done"] == 1 and doc["ok"] == 1
        assert doc["jobs"] == 2
        assert doc["active"] == {}
        assert doc["eta_s"] == 2.25  # 1.5s mean * 3 remaining / 2 jobs

    def test_heartbeat_written_atomically(self, tmp_path):
        path = tmp_path / "heartbeat.json"
        bus, _, _, _ = reporter_with_bus(heartbeat_path=str(path))
        bus.emit(CellStarted("a:2", 1))
        assert json.loads(path.read_text())["active"] == {"a:2": 0.0}
        assert list(tmp_path.iterdir()) == [path]  # no leftover temp file


class TestFormatting:
    def test_fmt_duration(self):
        assert _fmt_duration(2.34) == "2.3s"
        assert _fmt_duration(61) == "1m01s"
        assert _fmt_duration(3660) == "1h01m"
