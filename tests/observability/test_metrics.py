"""Metrics registry: primitives, merging, harvest determinism, and the
serial-vs-parallel aggregation equality the journal relies on."""

from __future__ import annotations

import json

import pytest

from repro.config import MachineConfig
from repro.experiments.runner import BatchRunner, RunPolicy, run_experiment
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    harvest_cell_metrics,
    metric_key,
)
from repro.parallel import CellSpec, run_parallel_sweep
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name

SCALE = 0.1


class TestPrimitives:
    def test_metric_key_sorts_labels(self):
        assert metric_key("sim.hits", thread=1, core=0) == (
            "sim.hits{core=0,thread=1}"
        )
        assert metric_key("sim.cells") == "sim.cells"

    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set(self):
        gauge = Gauge()
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_histogram_buckets_and_mean(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(55.5 / 3)

    def test_histogram_merge_requires_same_bounds(self):
        a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a", core=0) is registry.counter("a", core=0)

    def test_absorb_sums_flat_dicts(self):
        registry = MetricsRegistry()
        registry.absorb({"sim.x": 2, "sim.y": 1})
        registry.absorb({"sim.x": 3})
        assert registry.counters["sim.x"].value == 5
        assert registry.subset("sim.") == {"sim.x": 5, "sim.y": 1}

    def test_merge_is_commutative(self):
        def build(values):
            registry = MetricsRegistry()
            for key, v in values:
                registry.counter(key).inc(v)
            registry.gauge("g").set(max(v for _, v in values))
            for _, v in values:
                registry.histogram("h").observe(v)
            return registry.to_dict()

        doc_a = build([("c", 1), ("c", 2)])
        doc_b = build([("c", 10), ("d", 4)])
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(doc_a)
        ab.merge(doc_b)
        ba.merge(doc_b)
        ba.merge(doc_a)
        assert ab.to_dict() == ba.to_dict()

    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("sim.cells").inc(3)
        registry.gauge("runtime.peak").set(7.0)
        registry.histogram("runtime.wall_s").observe(0.25)
        doc = registry.to_dict()
        assert MetricsRegistry.from_dict(doc).to_dict() == doc

    def test_write_is_deterministic_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        path_1, path_2 = tmp_path / "m1.json", tmp_path / "m2.json"
        registry.write(str(path_1))
        registry.write(str(path_2))
        assert path_1.read_bytes() == path_2.read_bytes()
        assert json.loads(path_1.read_text())["counters"] == {"a": 1, "b": 1}


class TestHarvest:
    def _cell(self, name="cholesky", n_threads=2):
        spec = by_name(name)
        machine = MachineConfig(n_cores=n_threads)
        return run_experiment(
            spec.full_name, machine,
            build_program(spec, n_threads, scale=SCALE),
            build_program(spec, 1, scale=SCALE),
        )

    def test_harvest_is_deterministic(self):
        flat_1 = harvest_cell_metrics(self._cell())
        flat_2 = harvest_cell_metrics(self._cell())
        assert flat_1 == flat_2
        assert list(flat_1) == list(flat_2)  # insertion order too

    def test_harvest_matches_ground_truth(self):
        result = self._cell()
        flat = harvest_cell_metrics(result)
        assert flat["sim.cells"] == 1
        assert flat["sim.total_cycles"] == result.mt_result.total_cycles
        for thread in result.mt_result.threads:
            key = metric_key("sim.spin_cycles", thread=thread.tid)
            assert flat[key] == thread.gt_spin_cycles
        for raw in result.report.cores:
            key = metric_key(
                "sim.memory_interference_stall", core=raw.core_id
            )
            assert flat[key] == raw.memory_interference_stall


class TestSerialParallelEquality:
    CELLS = [("cholesky", 2), ("fft", 2)]

    def test_sim_metrics_equal_serial_vs_jobs_2(self):
        policy = RunPolicy()
        serial = MetricsRegistry()
        runner = BatchRunner(policy=policy, scale=SCALE, metrics=serial)
        for name, n_threads in self.CELLS:
            runner.run_cell(by_name(name), n_threads)

        parallel = MetricsRegistry()
        run_parallel_sweep(
            [CellSpec(by_name(name), n, scale=SCALE)
             for name, n in self.CELLS],
            jobs=2, policy=policy, metrics=parallel,
        )

        assert serial.subset("sim.") == parallel.subset("sim.")
        assert serial.subset("sim.")["sim.cells"] == len(self.CELLS)
        # runtime.* metrics exist on both sides but are host-dependent
        assert parallel.counters["runtime.cells_ok"].value == len(self.CELLS)
