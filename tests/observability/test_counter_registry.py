"""The metric registry is the single source of truth for counter names.

Every metric the harness emits must be declared in
``METRIC_REGISTRY`` (name, kind, label set), every declared metric
must actually be emitted somewhere in ``src/``, and the canonical
table in ``docs/observability.md`` must list them all.  This is the
guard against the classic observability rot: counters renamed in code
but not in dashboards, or documented metrics that no longer exist.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.experiments.runner import BatchRunner, RunPolicy
from repro.observability.metrics import (
    METRIC_REGISTRY,
    MetricsRegistry,
    harvest_cell_metrics,
)
from repro.workloads.suite import by_name

SRC = Path(__file__).resolve().parents[2] / "src"
DOCS = Path(__file__).resolve().parents[2] / "docs" / "observability.md"

# every way a metric name reaches the registry or a flat payload:
#   metrics.counter("runtime.x") / .gauge( / .histogram(
#   metric_key("sim.x", core=...)
#   flat["sim.x"] = ...
_EMISSION = re.compile(
    r"""(?:\.(?:counter|gauge|histogram)\(\s*|metric_key\(\s*|flat\[)
        "((?:runtime|sim)\.[a-z0-9_]+)"
    """,
    re.VERBOSE | re.DOTALL,
)


def emitted_names() -> set[str]:
    names: set[str] = set()
    for path in SRC.rglob("*.py"):
        if path.name == "metrics.py":
            # the registry module itself: only its harvest code emits,
            # and its METRIC_REGISTRY literal would make the scan
            # circular — handled by the harvest runtime check below
            text = path.read_text()
            body = text[text.index("def metric_key"):]
            names.update(_EMISSION.findall(body))
        else:
            names.update(_EMISSION.findall(path.read_text()))
    return names


class TestSourceMatchesRegistry:
    def test_every_emitted_metric_is_registered(self):
        unregistered = emitted_names() - set(METRIC_REGISTRY)
        assert not unregistered, (
            f"metrics emitted in src/ but missing from METRIC_REGISTRY: "
            f"{sorted(unregistered)}"
        )

    def test_every_registered_metric_is_emitted(self):
        orphaned = set(METRIC_REGISTRY) - emitted_names()
        assert not orphaned, (
            f"METRIC_REGISTRY entries no code emits: {sorted(orphaned)}"
        )

    def test_registry_entries_are_well_formed(self):
        for name, entry in METRIC_REGISTRY.items():
            assert re.fullmatch(r"(runtime|sim)\.[a-z0-9_]+", name), name
            assert entry["kind"] in ("counter", "gauge", "histogram"), name
            assert isinstance(entry["labels"], tuple), name
            assert entry["help"], f"{name}: empty help text"


class TestDocsTable:
    def test_docs_list_every_registered_metric(self):
        text = DOCS.read_text()
        missing = [
            name for name in METRIC_REGISTRY if f"`{name}`" not in text
        ]
        assert not missing, (
            f"docs/observability.md table is missing: {missing}"
        )


class TestRuntimeKeys:
    @pytest.fixture(scope="class")
    def harvested(self):
        metrics = MetricsRegistry()
        runner = BatchRunner(
            policy=RunPolicy(), scale=0.05, metrics=metrics,
        )
        runner.run_sweep([(by_name("fft"), 2)])
        return metrics

    def test_every_runtime_key_parses_to_a_registered_name(self, harvested):
        key_re = re.compile(r"^([a-z0-9_.]+)(?:\{(.*)\})?$")
        stores = {
            "counter": harvested.counters,
            "gauge": harvested.gauges,
            "histogram": harvested.histograms,
        }
        for kind, store in stores.items():
            for key in store:
                match = key_re.match(key)
                assert match, f"unparseable metric key {key!r}"
                name, labels_txt = match.groups()
                entry = METRIC_REGISTRY.get(name)
                assert entry is not None, f"unregistered metric {name!r}"
                assert entry["kind"] == kind, (
                    f"{name}: registered as {entry['kind']}, "
                    f"emitted as {kind}"
                )
                labels = (
                    tuple(sorted(
                        part.split("=", 1)[0]
                        for part in labels_txt.split(",")
                    )) if labels_txt else ()
                )
                assert labels == tuple(sorted(entry["labels"])), (
                    f"{name}: labels {labels} != registered "
                    f"{entry['labels']}"
                )

    def test_harvest_covers_all_sim_metrics(self, harvested):
        # the flat per-cell payload exercises every sim.* registry entry
        outcome = BatchRunner(
            policy=RunPolicy(), scale=0.05
        ).run_cell(by_name("fft"), 2)
        flat = harvest_cell_metrics(outcome.result)
        flat_names = {key.split("{", 1)[0] for key in flat}
        sim_names = {n for n in METRIC_REGISTRY if n.startswith("sim.")}
        assert sim_names <= flat_names | {"sim.cells"}, (
            sorted(sim_names - flat_names)
        )
