"""EventBus subscribe/unsubscribe and dispatch semantics."""

from __future__ import annotations

import pytest

from repro.observability.events import (
    EVENT_TYPES,
    CellStarted,
    EventBus,
    MissBlocked,
    SimStarted,
    SpinSegment,
)


class TestSubscription:
    def test_typed_handler_sees_only_its_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(SimStarted, seen.append)
        bus.emit(SimStarted(2, 2))
        bus.emit(CellStarted("cholesky:2", 1))
        assert seen == [SimStarted(2, 2)]

    def test_subscribe_all_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        bus.emit(SimStarted(2, 2))
        bus.emit(CellStarted("cholesky:2", 1))
        assert len(seen) == 2

    def test_handlers_called_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(SimStarted, lambda e: order.append("first"))
        bus.subscribe(SimStarted, lambda e: order.append("second"))
        bus.subscribe_all(lambda e: order.append("all"))
        bus.emit(SimStarted(1, 1))
        assert order == ["first", "second", "all"]

    def test_unknown_event_type_rejected(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(int, lambda e: None)

    def test_every_declared_type_is_subscribable(self):
        bus = EventBus()
        for event_type in EVENT_TYPES:
            bus.subscribe(event_type, lambda e: None)
        assert bus.active


class TestUnsubscribe:
    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe(SimStarted, seen.append)
        bus.unsubscribe(SimStarted, seen.append)
        bus.emit(SimStarted(1, 1))
        assert seen == []

    def test_unsubscribe_unknown_handler_raises(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.unsubscribe(SimStarted, lambda e: None)

    def test_unsubscribe_during_dispatch_is_safe(self):
        bus = EventBus()
        seen = []

        def once(event):
            seen.append(event)
            bus.unsubscribe(SimStarted, once)

        bus.subscribe(SimStarted, once)
        bus.emit(SimStarted(1, 1))
        bus.emit(SimStarted(2, 2))
        assert seen == [SimStarted(1, 1)]

    def test_empty_handler_list_is_removed(self):
        bus = EventBus()
        handler = lambda e: None  # noqa: E731
        bus.subscribe(SpinSegment, handler)
        assert SpinSegment in bus
        bus.unsubscribe(SpinSegment, handler)
        assert SpinSegment not in bus
        assert not bus.active

    def test_unsubscribe_all(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        bus.unsubscribe_all(seen.append)
        bus.emit(SimStarted(1, 1))
        assert seen == [] and not bus.active


class TestIntrospection:
    def test_contains_reflects_typed_subscriptions(self):
        bus = EventBus()
        assert MissBlocked not in bus
        bus.subscribe(MissBlocked, lambda e: None)
        assert MissBlocked in bus
        assert SpinSegment not in bus

    def test_subscribe_all_makes_every_type_contained(self):
        bus = EventBus()
        bus.subscribe_all(lambda e: None)
        assert MissBlocked in bus and SpinSegment in bus

    def test_n_emitted_counts_even_without_handlers(self):
        bus = EventBus()
        bus.emit(SimStarted(1, 1))
        bus.emit(SimStarted(1, 1))
        assert bus.n_emitted == 2

    def test_events_are_frozen(self):
        event = SimStarted(2, 2)
        with pytest.raises(Exception):
            event.n_threads = 3
