"""Machine configuration: validation, derivation, serialization."""

from __future__ import annotations

import json
import tomllib
from dataclasses import FrozenInstanceError

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    KB,
    MB,
    AccountingConfig,
    CacheConfig,
    CoreConfig,
    DramConfig,
    ExperimentConfig,
    MachineConfig,
    RunConfig,
    WorkloadConfig,
    dump_config,
    dumps_toml,
    load_config,
    machine_from_dict,
    machine_to_dict,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(size_bytes=64 * KB, assoc=4)
        assert config.n_sets == 256
        assert config.n_lines == 1024

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100_000, assoc=4)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64 * KB, assoc=4, line_bytes=48)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 64 * KB, assoc=4)

    def test_frozen(self):
        config = CacheConfig(size_bytes=64 * KB, assoc=4)
        with pytest.raises(FrozenInstanceError):
            config.assoc = 8


class TestDramConfig:
    def test_derived_timings(self):
        dram = DramConfig(t_cas=40, t_rcd=60, t_rp=60)
        assert dram.page_hit_cycles == 40
        assert dram.page_empty_cycles == 100
        assert dram.page_conflict_cycles == 160
        assert dram.conflict_extra_cycles == 120

    def test_rejects_odd_bank_count(self):
        with pytest.raises(ValueError):
            DramConfig(n_banks=6)

    def test_rejects_odd_page_size(self):
        with pytest.raises(ValueError):
            DramConfig(page_bytes=5000)


class TestCoreConfig:
    def test_rob_drain(self):
        assert CoreConfig(dispatch_width=4, rob_size=128).rob_drain_cycles == 32


class TestAccountingConfig:
    def test_rejects_unknown_detector(self):
        with pytest.raises(ValueError):
            AccountingConfig(spin_detector="magic")

    def test_rejects_zero_period(self):
        with pytest.raises(ValueError):
            AccountingConfig(atd_sample_period=0)


class TestMachineConfig:
    def test_defaults_match_paper_methodology(self):
        machine = MachineConfig()
        assert machine.n_cores == 16
        assert machine.core.dispatch_width == 4        # four-wide OoO
        assert machine.l1i.size_bytes == 32 * KB       # 32KB L1 I
        assert machine.l1d.size_bytes == 64 * KB       # 64KB L1 D
        assert machine.llc.size_bytes == 2 * MB        # 2MB shared LLC
        assert machine.dram.n_banks == 8               # 8 memory banks

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=0)

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ValueError):
            MachineConfig(
                llc=CacheConfig(size_bytes=2 * MB, assoc=16, line_bytes=128),
            )

    def test_with_cores_preserves_rest(self):
        machine = MachineConfig(n_cores=16)
        derived = machine.with_cores(4)
        assert derived.n_cores == 4
        assert derived.llc is machine.llc

    def test_with_llc_size_preserves_rest(self):
        machine = MachineConfig()
        derived = machine.with_llc_size(8 * MB)
        assert derived.llc.size_bytes == 8 * MB
        assert derived.llc.assoc == machine.llc.assoc
        assert derived.n_cores == machine.n_cores


class TestWorkloadConfig:
    def test_defaults(self):
        workload = WorkloadConfig()
        assert workload.benchmarks is None
        assert workload.thread_counts == (16,)
        assert workload.scale == 1.0

    def test_coerces_lists_to_tuples(self):
        workload = WorkloadConfig(benchmarks=["fft"], thread_counts=[2, 4])
        assert workload.benchmarks == ("fft",)
        assert workload.thread_counts == (2, 4)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            WorkloadConfig(scale=0.0)

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            WorkloadConfig(thread_counts=(0,))


class TestRunConfig:
    def test_rejects_unknown_on_error(self):
        with pytest.raises(ConfigError) as exc:
            RunConfig(on_error="explode")
        assert exc.value.choices == ("abort", "skip", "retry")

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            RunConfig(jobs=0)


# ----------------------------------------------------------------------
# ExperimentConfig serialization
# ----------------------------------------------------------------------

experiment_configs = st.builds(
    ExperimentConfig,
    machine=st.builds(
        MachineConfig,
        n_cores=st.sampled_from([1, 2, 4, 8, 16]),
        llc=st.builds(
            CacheConfig,
            size_bytes=st.sampled_from([1 * MB, 2 * MB, 4 * MB]),
            assoc=st.sampled_from([8, 16]),
            hit_latency=st.integers(min_value=10, max_value=40),
            replacement=st.sampled_from(["lru", "fifo", "random"]),
        ),
        accounting=st.builds(
            AccountingConfig,
            spin_detector=st.sampled_from(["tian", "li"]),
            atd_sample_period=st.sampled_from([1, 32, 64]),
        ),
    ),
    workload=st.builds(
        WorkloadConfig,
        benchmarks=st.one_of(
            st.none(),
            st.lists(
                st.sampled_from(["fft", "lu", "cholesky"]),
                min_size=1, max_size=3, unique=True,
            ).map(tuple),
        ),
        thread_counts=st.lists(
            st.sampled_from([1, 2, 4, 8, 16]),
            min_size=1, max_size=4, unique=True,
        ).map(tuple),
        scale=st.sampled_from([0.05, 0.25, 1.0]),
    ),
    run=st.builds(
        RunConfig,
        on_error=st.sampled_from(["abort", "skip", "retry"]),
        max_retries=st.integers(min_value=0, max_value=4),
        jobs=st.integers(min_value=1, max_value=8),
        max_cycles=st.one_of(st.none(), st.sampled_from([10**6, 10**8])),
    ),
)


class TestExperimentConfig:
    def test_default_machine_is_paper_default(self):
        assert ExperimentConfig().machine == MachineConfig()

    @settings(max_examples=40, deadline=None)
    @given(experiment_configs)
    def test_dict_round_trip(self, config):
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    @settings(max_examples=20, deadline=None)
    @given(experiment_configs)
    def test_toml_round_trip(self, config):
        parsed = tomllib.loads(dumps_toml(config.to_dict()))
        assert ExperimentConfig.from_dict(parsed) == config

    @settings(max_examples=20, deadline=None)
    @given(experiment_configs)
    def test_json_round_trip(self, config):
        parsed = json.loads(json.dumps(config.to_dict()))
        assert ExperimentConfig.from_dict(parsed) == config

    def test_machine_dict_round_trip(self):
        machine = MachineConfig(n_cores=4).with_llc_quotas((4, 4, 4, 4))
        assert machine_from_dict(machine_to_dict(machine)) == machine

    def test_unknown_section_rejected_with_path(self):
        with pytest.raises(ConfigError, match="hardware"):
            ExperimentConfig.from_dict({"hardware": {}})

    def test_unknown_nested_key_names_full_path(self):
        with pytest.raises(ConfigError, match="machine.llc"):
            ExperimentConfig.from_dict(
                {"machine": {"llc": {"sets": 128}}}
            )

    def test_bad_component_name_reports_path_and_choices(self):
        with pytest.raises(ConfigError) as exc:
            ExperimentConfig.from_dict(
                {"machine": {"llc": {
                    "size_bytes": 2 * MB, "assoc": 16,
                    "replacement": "plru",
                }}}
            )
        message = str(exc.value)
        assert "machine.llc" in message
        assert exc.value.choices == ("fifo", "lru", "random")

    def test_load_toml(self, tmp_path):
        path = tmp_path / "exp.toml"
        path.write_text(
            "[machine]\nn_cores = 4\n\n"
            "[machine.llc]\nsize_bytes = 4194304\nassoc = 16\n"
            "hit_latency = 30\nhidden_latency = 30\n\n"
            "[workload]\nbenchmarks = [\"fft\"]\nthread_counts = [2, 4]\n"
            "scale = 0.25\n\n"
            "[run]\non_error = \"retry\"\njobs = 2\n",
            encoding="utf-8",
        )
        config = load_config(path)
        assert config.machine.n_cores == 4
        assert config.machine.llc.size_bytes == 4 * MB
        assert config.workload.benchmarks == ("fft",)
        assert config.workload.thread_counts == (2, 4)
        assert config.run.on_error == "retry"
        assert config.run.jobs == 2

    def test_load_json(self, tmp_path):
        path = tmp_path / "exp.json"
        config = ExperimentConfig(
            workload=WorkloadConfig(thread_counts=(2,), scale=0.5)
        )
        dump_config(config, path)
        assert load_config(path) == config

    def test_dump_load_toml(self, tmp_path):
        path = tmp_path / "exp.toml"
        config = ExperimentConfig(
            machine=MachineConfig(n_cores=8),
            run=RunConfig(on_error="abort", max_cycles=10**6),
        )
        dump_config(config, path)
        assert load_config(path) == config

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_config(tmp_path / "nope.toml")

    def test_load_malformed_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[machine\nn_cores = 4\n", encoding="utf-8")
        with pytest.raises(ConfigError):
            load_config(path)
