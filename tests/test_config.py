"""Machine configuration: validation and derivation."""

from __future__ import annotations

from dataclasses import FrozenInstanceError

import pytest

from repro.config import (
    KB,
    MB,
    AccountingConfig,
    CacheConfig,
    CoreConfig,
    DramConfig,
    MachineConfig,
)


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(size_bytes=64 * KB, assoc=4)
        assert config.n_sets == 256
        assert config.n_lines == 1024

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100_000, assoc=4)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64 * KB, assoc=4, line_bytes=48)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 64 * KB, assoc=4)

    def test_frozen(self):
        config = CacheConfig(size_bytes=64 * KB, assoc=4)
        with pytest.raises(FrozenInstanceError):
            config.assoc = 8


class TestDramConfig:
    def test_derived_timings(self):
        dram = DramConfig(t_cas=40, t_rcd=60, t_rp=60)
        assert dram.page_hit_cycles == 40
        assert dram.page_empty_cycles == 100
        assert dram.page_conflict_cycles == 160
        assert dram.conflict_extra_cycles == 120

    def test_rejects_odd_bank_count(self):
        with pytest.raises(ValueError):
            DramConfig(n_banks=6)

    def test_rejects_odd_page_size(self):
        with pytest.raises(ValueError):
            DramConfig(page_bytes=5000)


class TestCoreConfig:
    def test_rob_drain(self):
        assert CoreConfig(dispatch_width=4, rob_size=128).rob_drain_cycles == 32


class TestAccountingConfig:
    def test_rejects_unknown_detector(self):
        with pytest.raises(ValueError):
            AccountingConfig(spin_detector="magic")

    def test_rejects_zero_period(self):
        with pytest.raises(ValueError):
            AccountingConfig(atd_sample_period=0)


class TestMachineConfig:
    def test_defaults_match_paper_methodology(self):
        machine = MachineConfig()
        assert machine.n_cores == 16
        assert machine.core.dispatch_width == 4        # four-wide OoO
        assert machine.l1i.size_bytes == 32 * KB       # 32KB L1 I
        assert machine.l1d.size_bytes == 64 * KB       # 64KB L1 D
        assert machine.llc.size_bytes == 2 * MB        # 2MB shared LLC
        assert machine.dram.n_banks == 8               # 8 memory banks

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=0)

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ValueError):
            MachineConfig(
                llc=CacheConfig(size_bytes=2 * MB, assoc=16, line_bytes=128),
            )

    def test_with_cores_preserves_rest(self):
        machine = MachineConfig(n_cores=16)
        derived = machine.with_cores(4)
        assert derived.n_cores == 4
        assert derived.llc is machine.llc

    def test_with_llc_size_preserves_rest(self):
        machine = MachineConfig()
        derived = machine.with_llc_size(8 * MB)
        assert derived.llc.size_bytes == 8 * MB
        assert derived.llc.assoc == machine.llc.assoc
        assert derived.n_cores == machine.n_cores
