"""Auxiliary tag directory: inter-thread hit/miss classification."""

from __future__ import annotations

import pytest

from repro.accounting.atd import AuxiliaryTagDirectory
from repro.accounting.interface import INTER_THREAD_HIT, INTER_THREAD_MISS
from repro.config import KB, CacheConfig

LLC = CacheConfig(size_bytes=64 * KB, assoc=4, hit_latency=30,
                  hidden_latency=30)  # 256 sets


def make_atd(sample_period=1) -> AuxiliaryTagDirectory:
    return AuxiliaryTagDirectory(LLC, sample_period)


class TestClassification:
    def test_cold_miss_not_classified(self):
        """Miss in both the shared LLC and the ATD: a plain miss."""
        atd = make_atd()
        assert atd.observe(0x10, 0x10 % 256, shared_hit=False, is_load=True) is None

    def test_inter_thread_miss(self):
        """ATD hit (this core's private LLC would have kept the line)
        but shared miss (another thread evicted it)."""
        atd = make_atd()
        atd.observe(0x10, 0x10 % 256, shared_hit=False, is_load=True)  # fill
        result = atd.observe(0x10, 0x10 % 256, shared_hit=False, is_load=True)
        assert result == INTER_THREAD_MISS
        assert atd.n_inter_thread_misses == 1

    def test_inter_thread_hit(self):
        """Shared hit although this core never touched the line: another
        thread prefetched it (positive interference)."""
        atd = make_atd()
        result = atd.observe(0x20, 0x20 % 256, shared_hit=True, is_load=True)
        assert result == INTER_THREAD_HIT
        assert atd.n_inter_thread_hits == 1
        assert atd.n_sampled_load_inter_hits == 1

    def test_store_inter_hit_not_counted_for_interpolation(self):
        atd = make_atd()
        atd.observe(0x20, 0x20 % 256, shared_hit=True, is_load=False)
        assert atd.n_inter_thread_hits == 1
        assert atd.n_sampled_load_inter_hits == 0

    def test_agreeing_hit_unclassified(self):
        atd = make_atd()
        atd.observe(0x30, 0x30 % 256, shared_hit=False, is_load=True)
        assert atd.observe(0x30, 0x30 % 256, shared_hit=True, is_load=True) is None


class TestSampling:
    def test_only_sampled_sets_observed(self):
        atd = make_atd(sample_period=8)  # samples sets 4, 12, 20, ...
        assert atd.observe(0x100, 9, shared_hit=True, is_load=True) is None
        assert atd.n_sampled_accesses == 0
        assert atd.observe(0x200, 12, shared_hit=True, is_load=True) is not None
        assert atd.n_sampled_accesses == 1

    def test_is_sampled(self):
        atd = make_atd(sample_period=4)  # offset 2
        assert atd.is_sampled(2)
        assert atd.is_sampled(6)
        assert not atd.is_sampled(0)
        assert not atd.is_sampled(3)

    def test_sampling_avoids_aligned_hot_sets(self):
        """Set 0 collects region-base lines (locks, headers); it must
        not be monitored for any real sampling period."""
        for period in (2, 8, 64):
            assert not make_atd(period).is_sampled(0)

    def test_sampling_factor(self):
        atd = make_atd(sample_period=2)  # samples odd sets
        for k in range(10):
            atd.observe(k * 256 + 1, 1, shared_hit=False, is_load=True)
        assert atd.sampling_factor(total_accesses=40) == 4.0

    def test_sampling_factor_zero_when_unused(self):
        assert make_atd().sampling_factor(100) == 0.0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            AuxiliaryTagDirectory(LLC, 0)


class TestPrivateLlcModel:
    def test_capacity_eviction_in_atd(self):
        """The ATD models a private LLC of the same geometry: filling a
        set beyond its associativity evicts the LRU line, so a re-access
        of the evicted line is NOT an inter-thread miss (it would have
        missed privately too)."""
        atd = make_atd()
        set_index = 5
        lines = [set_index + k * 256 for k in range(5)]  # assoc is 4
        for line in lines:
            atd.observe(line, set_index, shared_hit=False, is_load=True)
        # lines[0] was evicted from the private model
        result = atd.observe(lines[0], set_index, shared_hit=False, is_load=True)
        assert result is None

    def test_warm_prefills_without_counting(self):
        atd = make_atd()
        atd.warm(0x40, 0x40 % 256)
        assert atd.n_sampled_accesses == 0
        result = atd.observe(0x40, 0x40 % 256, shared_hit=False, is_load=True)
        assert result == INTER_THREAD_MISS

    def test_warm_ignores_unsampled_sets(self):
        atd = make_atd(sample_period=8)
        atd.warm(0x100 + 3, 3)
        assert atd.tag_store.occupancy() == 0
        atd.warm(0x100 + 4, 4)
        assert atd.tag_store.occupancy() == 1
