"""Hardware cost model: the Section 4.7 numbers."""

from __future__ import annotations

import pytest

from repro.accounting.hardware_cost import (
    PAPER_INTERFERENCE_BYTES_PER_CORE,
    PAPER_SPIN_TABLE_BYTES_PER_CORE,
    PAPER_TOTAL_KB_16_CORES,
    HardwareCostParams,
    estimate_cost,
)
from repro.config import MB, CacheConfig, MachineConfig


class TestPaperNumbers:
    def test_interference_cost_is_952_bytes(self):
        cost = estimate_cost(MachineConfig(n_cores=16))
        assert cost.interference_bytes_per_core == PAPER_INTERFERENCE_BYTES_PER_CORE

    def test_spin_table_cost_is_217_bytes(self):
        cost = estimate_cost(MachineConfig(n_cores=16))
        assert cost.spin_table_bytes == PAPER_SPIN_TABLE_BYTES_PER_CORE

    def test_per_core_cost_about_1_1_kb(self):
        cost = estimate_cost(MachineConfig(n_cores=16))
        assert cost.per_core_kb == pytest.approx(1.1, abs=0.1)

    def test_total_cost_about_18_kb(self):
        cost = estimate_cost(MachineConfig(n_cores=16))
        assert cost.total_kb == pytest.approx(PAPER_TOTAL_KB_16_CORES, abs=0.5)


class TestScaling:
    def test_cost_scales_with_cores(self):
        c4 = estimate_cost(MachineConfig(n_cores=4))
        c16 = estimate_cost(MachineConfig(n_cores=16))
        assert c16.total_bytes == 4 * c4.total_bytes
        assert c16.per_core_bytes == c4.per_core_bytes

    def test_cost_scales_with_associativity(self):
        base = MachineConfig(n_cores=16)
        wide = MachineConfig(
            n_cores=16,
            llc=CacheConfig(size_bytes=2 * MB, assoc=32, hit_latency=30,
                            hidden_latency=30),
        )
        assert estimate_cost(wide).atd_bytes == 2 * estimate_cost(base).atd_bytes

    def test_custom_params(self):
        params = HardwareCostParams(atd_sampled_sets=64)
        cost = estimate_cost(MachineConfig(n_cores=16), params)
        default = estimate_cost(MachineConfig(n_cores=16))
        assert cost.atd_bytes == 2 * default.atd_bytes

    def test_spin_entry_is_217_bits(self):
        params = HardwareCostParams()
        bits = (
            params.spin_pc_bits + params.spin_addr_bits
            + params.spin_data_bits + params.spin_mark_bits
            + params.spin_timestamp_bits
        )
        assert bits == 217
