"""The cycle accountant: component bookkeeping and report derivation."""

from __future__ import annotations

import pytest

from repro.accounting.accountant import CycleAccountant
from repro.accounting.interface import INTER_THREAD_MISS, NULL_ACCOUNTANT
from repro.config import AccountingConfig, MachineConfig
from repro.errors import SimulationError
from repro.sim.engine import Simulation, simulate
from repro.sim.memory import DramAccessResult, PAGE_HIT

from tests.conftest import lock_step_program


def dram(bus_other=0, bank_other=0, extra=0) -> DramAccessResult:
    return DramAccessResult(
        latency=150, bank_index=0, page_id=1, page_outcome=PAGE_HIT,
        prev_open_page=None, prev_opener=None,
        bus_wait_other=bus_other, bank_wait_other=bank_other,
        page_extra_cycles=extra,
    )


@pytest.fixture
def accountant(machine4) -> CycleAccountant:
    return CycleAccountant(machine4)


class TestMissAccounting:
    def test_memory_interference_capped_by_blocked(self, accountant):
        accountant.on_miss_blocked(
            0, blocked_cycles=50, classification=None,
            dram_result=dram(bus_other=40, bank_other=40),
            is_load=True,
        )
        assert accountant.neg_mem_stall[0] == 50

    def test_inter_thread_miss_split(self, accountant):
        """The stall splits: memory-interference part + cache part."""
        accountant.on_miss_blocked(
            0, blocked_cycles=100, classification=INTER_THREAD_MISS,
            dram_result=dram(bus_other=30), is_load=True,
        )
        assert accountant.neg_mem_stall[0] == 30
        assert accountant.neg_llc_sampled_stall[0] == 70

    def test_ora_conflict_adds_page_penalty(self, accountant):
        accountant.on_miss_blocked(
            0, blocked_cycles=500, classification=None,
            dram_result=dram(extra=120), is_load=True, ora_conflict=True,
        )
        assert accountant.neg_mem_stall[0] == 120

    def test_load_stall_feeds_avg_penalty(self, accountant):
        accountant.on_miss_blocked(0, 80, None, dram(), is_load=True)
        accountant.on_miss_blocked(0, 40, None, dram(), is_load=False)
        assert accountant.llc_load_miss_blocked_stall[0] == 80


class TestInterpolation:
    def test_positive_interference_uses_avg_penalty(self, machine4):
        accountant = CycleAccountant(machine4)
        # 2 load misses, 200 blocked cycles total -> avg penalty 100
        accountant.classify_llc_access(0, 0x10, 0, shared_hit=False, is_load=True)
        accountant.classify_llc_access(0, 0x20, 0, shared_hit=False, is_load=True)
        accountant.on_miss_blocked(0, 120, None, dram(), True)
        accountant.on_miss_blocked(0, 80, None, dram(), True)
        raw = accountant.raw_counters(0)
        assert raw.avg_miss_penalty == 100.0

    def test_sampling_factor_in_report(self, machine4):
        config = AccountingConfig(atd_sample_period=2)
        machine = MachineConfig(
            n_cores=4, accounting=config,
        )
        accountant = CycleAccountant(machine)
        n_sets = machine.llc.n_sets
        # 4 accesses, 2 in sampled sets
        for set_index in (0, 1, 2, 3):
            accountant.classify_llc_access(
                0, set_index, set_index, shared_hit=False, is_load=True
            )
        raw = accountant.raw_counters(0)
        assert raw.sampling_factor == 2.0


class TestSpinAndYield:
    def test_spin_truncated_adds(self, accountant):
        accountant.on_spin_truncated(1, 300)
        accountant.on_spin_truncated(1, 200)
        assert accountant.spin_cycles_of(1) == 500

    def test_yield_intervals_accumulate(self, accountant):
        accountant.on_yield_interval(2, 100, 400)
        accountant.on_yield_interval(2, 1000, 1600)
        assert accountant.yield_cycles[2] == 900

    def test_context_switch_flushes_detectors(self, accountant):
        accountant.on_retired_load(0, 0x1010, 0x7000, 5, -1, 100)
        assert accountant.spin_detectors[0].occupancy == 1
        accountant.on_context_switch(0)
        assert accountant.spin_detectors[0].occupancy == 0

    def test_li_detector_selected_by_config(self, machine4):
        from dataclasses import replace

        machine = replace(
            machine4,
            accounting=AccountingConfig(spin_detector="li"),
        )
        accountant = CycleAccountant(machine)
        accountant.on_backward_branch(0, 0x1018, 5, 100)
        accountant.on_backward_branch(0, 0x1018, 5, 140)
        assert accountant.spin_cycles_of(0) == 40
        # load hook inert in li mode (the branch table is untouched)
        accountant.on_retired_load(0, 0x1010, 0x7000, 5, -1, 100)
        assert accountant.spin_detectors[0].occupancy == 1


class TestCoherencyExtension:
    def test_disabled_by_default(self, accountant):
        accountant.on_coherency_miss(0, 30)
        assert accountant.coherency_stall[0] == 0

    def test_enabled_accounts(self, machine4):
        from dataclasses import replace

        machine = replace(
            machine4, accounting=AccountingConfig(account_coherency=True),
        )
        accountant = CycleAccountant(machine)
        accountant.on_coherency_miss(0, 30)
        assert accountant.coherency_stall[0] == 30


class TestReport:
    def test_report_from_real_run(self, machine4):
        accountant = CycleAccountant(machine4)
        result = Simulation(machine4, lock_step_program(4), accountant).run()
        report = accountant.report(result)
        assert report.n_threads == 4
        assert report.tp_cycles == result.total_cycles
        assert len(report.threads) == 4
        assert len(report.cores) == 4
        # yield measured by the accountant matches the engine's oracle
        for thread in result.threads:
            measured = report.threads[thread.tid].yielding
            assert measured == pytest.approx(thread.gt_yield_cycles)

    def test_report_rejects_oversubscription(self, machine4):
        from tests.conftest import compute_only_program

        accountant = CycleAccountant(machine4)
        result = Simulation(
            machine4, compute_only_program(8, 2000), accountant
        ).run()
        with pytest.raises(SimulationError):
            accountant.report(result)

    def test_overhead_clamped_to_tp(self, machine4):
        accountant = CycleAccountant(machine4)
        result = Simulation(machine4, lock_step_program(4), accountant).run()
        # poison one core with absurd interference before reporting
        accountant.neg_mem_stall[0] = 100 * result.total_cycles
        report = accountant.report(result)
        assert report.threads[0].total_overhead <= report.tp_cycles * 1.0001

    def test_estimated_speedup_bounded(self, machine4):
        accountant = CycleAccountant(machine4)
        result = Simulation(machine4, lock_step_program(4), accountant).run()
        report = accountant.report(result)
        assert 0 <= report.estimated_speedup <= 4.5


class TestNullAccountant:
    def test_hooks_are_noops(self):
        NULL_ACCOUNTANT.on_miss_blocked(0, 10, None, dram(), True)
        NULL_ACCOUNTANT.on_retired_load(0, 0, 0, 0, 0, 0)
        NULL_ACCOUNTANT.on_spin_truncated(0, 5)
        NULL_ACCOUNTANT.on_context_switch(0)
        NULL_ACCOUNTANT.warm_llc_access(0, 0, 0)
        assert NULL_ACCOUNTANT.classify_llc_access(0, 0, 0, True, True) is None
        assert NULL_ACCOUNTANT.note_dram_access(0, dram()) is False
        assert not NULL_ACCOUNTANT.enabled
