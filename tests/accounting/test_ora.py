"""Open row array: page-conflict attribution (Section 4.1)."""

from __future__ import annotations

from repro.accounting.ora import OpenRowArray
from repro.sim.memory import DramAccessResult, PAGE_CONFLICT, PAGE_EMPTY, PAGE_HIT


def access(bank: int, page: int, outcome: str, extra: int = 120) -> DramAccessResult:
    return DramAccessResult(
        latency=100,
        bank_index=bank,
        page_id=page,
        page_outcome=outcome,
        prev_open_page=None,
        prev_opener=None,
        bus_wait_other=0,
        bank_wait_other=0,
        page_extra_cycles=0 if outcome == PAGE_HIT else extra,
    )


class TestOra:
    def test_page_hit_never_conflict(self):
        ora = OpenRowArray(8)
        assert not ora.observe(access(0, 10, PAGE_HIT))

    def test_first_touch_not_attributed(self):
        """This core never opened the page: self-inflicted (cold) miss."""
        ora = OpenRowArray(8)
        assert not ora.observe(access(0, 10, PAGE_EMPTY))
        assert not ora.observe(access(0, 11, PAGE_CONFLICT))

    def test_conflict_on_own_recent_page_attributed(self):
        """The core opened page 10 most recently (per its ORA), yet the
        access conflicts: another core must have closed it."""
        ora = OpenRowArray(8)
        ora.observe(access(0, 10, PAGE_EMPTY))
        assert ora.observe(access(0, 10, PAGE_CONFLICT))
        assert ora.n_conflicts_from_others == 1

    def test_own_page_switch_not_attributed(self):
        """The core itself moved to another page: self-inflicted."""
        ora = OpenRowArray(8)
        ora.observe(access(0, 10, PAGE_EMPTY))
        assert not ora.observe(access(0, 11, PAGE_CONFLICT))

    def test_ora_updates_on_every_access(self):
        ora = OpenRowArray(8)
        ora.observe(access(0, 10, PAGE_EMPTY))
        ora.observe(access(0, 11, PAGE_CONFLICT))  # own switch, row now 11
        assert ora.row_for_bank(0) == 11
        assert ora.observe(access(0, 11, PAGE_CONFLICT))

    def test_banks_independent(self):
        ora = OpenRowArray(8)
        ora.observe(access(0, 10, PAGE_EMPTY))
        ora.observe(access(1, 99, PAGE_EMPTY))
        assert ora.row_for_bank(0) == 10
        assert ora.row_for_bank(1) == 99
        # conflict in bank 1 on its own page is attributed there only
        assert ora.observe(access(1, 99, PAGE_CONFLICT))
        assert not ora.observe(access(0, 12, PAGE_CONFLICT))
