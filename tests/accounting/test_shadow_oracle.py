"""Shadow-oracle ATD: in-run verification of set-sampling accuracy."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.accounting.accountant import CycleAccountant
from repro.config import AccountingConfig, MachineConfig
from repro.sim.engine import Simulation
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name

SCALE = 0.4


@pytest.fixture(scope="module")
def accountant():
    machine = replace(
        MachineConfig(n_cores=8),
        accounting=AccountingConfig(atd_shadow_oracle=True),
    )
    acct = CycleAccountant(machine)
    program = build_program(by_name("facesim_small"), 8, scale=SCALE)
    Simulation(machine, program, acct).run()
    return acct


class TestShadowOracle:
    def test_disabled_by_default(self, machine4):
        acct = CycleAccountant(machine4)
        assert acct.oracle_atds is None
        assert acct.raw_counters(0).oracle_inter_thread_misses == -1

    def test_oracle_counts_present(self, accountant):
        for core in range(8):
            raw = accountant.raw_counters(core)
            assert raw.oracle_inter_thread_misses >= 0
            assert raw.oracle_inter_thread_hits >= 0

    def test_oracle_never_below_sampled(self, accountant):
        """The full-tag oracle sees a superset of the sampled events."""
        for core in range(8):
            raw = accountant.raw_counters(core)
            assert (
                raw.oracle_inter_thread_misses
                >= raw.sampled_inter_thread_misses
            )

    def test_extrapolation_tracks_oracle_in_aggregate(self, accountant):
        """Across all cores, sampled-count extrapolation lands within a
        factor ~2 of the oracle (the accuracy class set sampling buys)."""
        extrapolated = sum(
            accountant.raw_counters(c).extrapolated_inter_thread_misses
            for c in range(8)
        )
        oracle = sum(
            accountant.raw_counters(c).oracle_inter_thread_misses
            for c in range(8)
        )
        assert oracle > 0
        assert 0.5 * oracle <= extrapolated <= 2.0 * oracle

    def test_oracle_does_not_change_components(self):
        """The shadow oracle is observation-only: the reported stack is
        identical with and without it."""
        results = {}
        for enabled in (False, True):
            machine = replace(
                MachineConfig(n_cores=4),
                accounting=AccountingConfig(atd_shadow_oracle=enabled),
            )
            acct = CycleAccountant(machine)
            program = build_program(by_name("dedup_small"), 4, scale=0.1)
            result = Simulation(machine, program, acct).run()
            results[enabled] = acct.report(result)
        off, on = results[False], results[True]
        assert off.tp_cycles == on.tp_cycles
        for a, b in zip(off.threads, on.threads):
            assert a.negative_llc == b.negative_llc
            assert a.positive_llc == b.positive_llc
