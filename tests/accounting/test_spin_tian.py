"""Tian et al. load-watch spin detector."""

from __future__ import annotations

import pytest

from repro.accounting.spin_tian import TianSpinDetector

PC = 0x1010
ADDR = 0x7000_0000


def spin_episode(detector, start, iters, value, period=4):
    """Feed a spin loop: repeated identical loads of (ADDR, value)."""
    for k in range(iters):
        detector.on_load(PC, ADDR, value, writer_core=-1, now=start + k * period,
                         self_core=0)
    return start + iters * period


class TestDetection:
    def test_basic_episode_credited(self):
        detector = TianSpinDetector(threshold=2)
        end = spin_episode(detector, start=100, iters=10, value=5)
        # another core writes a new value; the next load observes it
        detector.on_load(PC, ADDR, 6, writer_core=1, now=end, self_core=0)
        assert detector.spin_cycles == end - 100
        assert detector.n_episodes == 1

    def test_below_threshold_not_marked(self):
        detector = TianSpinDetector(threshold=4)
        detector.on_load(PC, ADDR, 5, -1, 100, 0)
        detector.on_load(PC, ADDR, 5, -1, 104, 0)  # count 2 < 4
        detector.on_load(PC, ADDR, 6, 1, 108, 0)
        assert detector.spin_cycles == 0

    def test_own_write_not_spinning(self):
        """Value changed by the same core: not a synchronization wait."""
        detector = TianSpinDetector(threshold=2)
        end = spin_episode(detector, 100, 10, value=5)
        detector.on_load(PC, ADDR, 6, writer_core=0, now=end, self_core=0)
        assert detector.spin_cycles == 0

    def test_unwritten_value_not_spinning(self):
        detector = TianSpinDetector(threshold=2)
        end = spin_episode(detector, 100, 10, value=-1)
        detector.on_load(PC, ADDR, 7, writer_core=-1, now=end, self_core=0)
        assert detector.spin_cycles == 0

    def test_different_address_resets(self):
        """A load of a different address is not the spin variable."""
        detector = TianSpinDetector(threshold=2)
        end = spin_episode(detector, 100, 10, value=5)
        detector.on_load(PC, ADDR + 64, 9, writer_core=1, now=end, self_core=0)
        assert detector.spin_cycles == 0

    def test_consecutive_episodes_accumulate(self):
        detector = TianSpinDetector(threshold=2)
        end1 = spin_episode(detector, 100, 5, value=5)
        detector.on_load(PC, ADDR, 6, 1, end1, 0)  # credit episode 1
        end2 = spin_episode(detector, end1 + 4, 5, value=6)
        # value 6 already observed at end1: entry continued from there
        detector.on_load(PC, ADDR, 7, 1, end2, 0)
        assert detector.n_episodes == 2
        assert detector.spin_cycles == (end1 - 100) + (end2 - end1)


class TestTable:
    def test_capacity_evicts_lru_pc(self):
        detector = TianSpinDetector(n_entries=2, threshold=2)
        detector.on_load(0x10, ADDR, 1, -1, 0, 0)
        detector.on_load(0x20, ADDR, 1, -1, 4, 0)
        detector.on_load(0x30, ADDR, 1, -1, 8, 0)  # evicts 0x10
        assert detector.occupancy == 2
        # 0x10 re-inserted fresh: no history
        detector.on_load(0x10, ADDR, 2, 1, 12, 0)
        assert detector.spin_cycles == 0

    def test_flush_on_context_switch(self):
        detector = TianSpinDetector(threshold=2)
        end = spin_episode(detector, 100, 10, value=5)
        detector.flush()
        detector.on_load(PC, ADDR, 6, 1, end, 0)
        assert detector.spin_cycles == 0
        assert detector.occupancy == 1

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TianSpinDetector(n_entries=0)
        with pytest.raises(ValueError):
            TianSpinDetector(threshold=1)


class TestNonSpinTraffic:
    def test_streaming_loads_not_detected(self):
        """A streaming loop (different address every load) never marks."""
        detector = TianSpinDetector(threshold=2)
        for k in range(100):
            detector.on_load(PC, ADDR + k * 64, k, writer_core=1,
                             now=k * 4, self_core=0)
        assert detector.spin_cycles == 0

    def test_changing_values_not_detected(self):
        """A consumer reading a queue sees fresh values: not spinning."""
        detector = TianSpinDetector(threshold=2)
        for k in range(100):
            detector.on_load(PC, ADDR, k, writer_core=1, now=k * 4,
                             self_core=0)
        assert detector.spin_cycles == 0
