"""``CycleAccountant.snapshot`` and its public-API route.

The snapshot is the accountant's raw cumulative counter state — the
numbers every speedup-stack component is computed *from*.  These tests
pin the per-component totals against the post-processed report and the
engine's ground truth, and check the ``repro.accounted_snapshot``
facade returns exactly what a hand-wired accountant would.
"""

from __future__ import annotations

import repro
from repro.accounting.accountant import CycleAccountant
from repro.config import MachineConfig
from repro.sim.engine import Simulation

from tests.conftest import lock_step_program

N_THREADS = 4


def run_with_accountant(machine=None):
    machine = machine or MachineConfig(n_cores=N_THREADS)
    program = lock_step_program(N_THREADS)
    accountant = CycleAccountant(machine)
    result = Simulation(machine, program, accountant).run()
    return machine, result, accountant


class TestSnapshotTotals:
    def test_per_core_shapes(self):
        machine, _, accountant = run_with_accountant()
        snap = accountant.snapshot()
        per_core_keys = (
            "llc_accesses", "llc_load_misses",
            "llc_load_miss_blocked_stall", "neg_llc_sampled_stall",
            "neg_mem_stall", "spin", "inter_hits", "coherency",
        )
        for key in per_core_keys:
            assert len(snap[key]) == machine.n_cores, key

    def test_totals_match_report_raw_counters(self):
        machine, result, accountant = run_with_accountant()
        snap = accountant.snapshot()
        for core in range(machine.n_cores):
            raw = accountant.raw_counters(core)
            assert snap["llc_accesses"][core] == raw.llc_accesses
            assert snap["llc_load_misses"][core] == raw.llc_load_misses
            assert (snap["llc_load_miss_blocked_stall"][core]
                    == raw.llc_load_miss_blocked_stall)
            assert (snap["neg_llc_sampled_stall"][core]
                    == raw.sampled_inter_miss_blocked_stall)
            assert (snap["neg_mem_stall"][core]
                    == raw.memory_interference_stall)

    def test_spin_totals_include_truncated_cycles(self):
        machine, _, accountant = run_with_accountant()
        accountant.on_spin_truncated(0, 123)
        snap = accountant.snapshot()
        assert snap["spin"][0] == accountant.spin_cycles_of(0)
        assert snap["spin"][0] >= 123

    def test_yield_totals_match_engine_ground_truth(self):
        machine, result, accountant = run_with_accountant()
        snap = accountant.snapshot()
        gt_yield = {
            thread.tid: thread.gt_yield_cycles
            for thread in result.threads
            if thread.gt_yield_cycles
        }
        assert snap["yield"] == gt_yield

    def test_snapshot_is_a_copy(self):
        _, _, accountant = run_with_accountant()
        snap = accountant.snapshot()
        snap["llc_accesses"][0] += 1000
        assert accountant.snapshot()["llc_accesses"][0] != (
            snap["llc_accesses"][0]
        )


class TestAccountedSnapshotFacade:
    def test_exported(self):
        assert "accounted_snapshot" in repro.__all__
        assert callable(repro.accounted_snapshot)

    def test_matches_hand_wired_accountant(self):
        machine = MachineConfig(n_cores=N_THREADS)
        snap = repro.accounted_snapshot(
            machine, lock_step_program(N_THREADS)
        )
        _, _, accountant = run_with_accountant(machine)
        assert snap == accountant.snapshot()

    def test_truncated_run_still_yields_totals(self):
        machine = MachineConfig(n_cores=N_THREADS)
        snap = repro.accounted_snapshot(
            machine, lock_step_program(N_THREADS),
            max_cycles=2_000, on_timeout="truncate",
        )
        assert sum(snap["llc_accesses"]) >= 0
        assert len(snap["spin"]) == machine.n_cores
