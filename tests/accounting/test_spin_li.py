"""Li et al. backward-branch spin detector."""

from __future__ import annotations

import pytest

from repro.accounting.spin_li import LiSpinDetector

PC = 0x1018


class TestDetection:
    def test_unchanged_state_credits_time(self):
        detector = LiSpinDetector()
        detector.on_backward_branch(PC, state_signature=5, now=100)
        detector.on_backward_branch(PC, state_signature=5, now=110)
        assert detector.spin_cycles == 10
        assert detector.n_detections == 1

    def test_incremental_credit_no_double_count(self):
        detector = LiSpinDetector()
        for now in (100, 110, 120, 130):
            detector.on_backward_branch(PC, 5, now)
        assert detector.spin_cycles == 30

    def test_state_change_resets(self):
        detector = LiSpinDetector()
        detector.on_backward_branch(PC, 5, 100)
        detector.on_backward_branch(PC, 6, 110)  # state changed: working
        assert detector.spin_cycles == 0
        detector.on_backward_branch(PC, 6, 120)
        assert detector.spin_cycles == 10

    def test_different_branches_independent(self):
        detector = LiSpinDetector()
        detector.on_backward_branch(0x10, 1, 100)
        detector.on_backward_branch(0x20, 1, 104)
        detector.on_backward_branch(0x10, 1, 108)
        assert detector.spin_cycles == 8

    def test_flush(self):
        detector = LiSpinDetector()
        detector.on_backward_branch(PC, 5, 100)
        detector.flush()
        detector.on_backward_branch(PC, 5, 200)
        assert detector.spin_cycles == 0
        assert detector.occupancy == 1


class TestTable:
    def test_capacity(self):
        detector = LiSpinDetector(n_entries=2)
        for k in range(5):
            detector.on_backward_branch(0x10 + k * 8, 1, k)
        assert detector.occupancy == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            LiSpinDetector(n_entries=0)


class TestProgressingLoop:
    def test_loop_with_changing_state_never_detected(self):
        """A loop doing real work changes state every iteration."""
        detector = LiSpinDetector()
        for k in range(50):
            detector.on_backward_branch(PC, state_signature=k, now=k * 10)
        assert detector.spin_cycles == 0
