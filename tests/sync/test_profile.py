"""Lock/barrier contention profiling."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.sim.engine import simulate
from repro.sync.profile import (
    barrier_profiles,
    lock_profiles,
    render_sync_profile,
)
from repro.workloads.program import (
    BarrierWait,
    Compute,
    LockAcquire,
    LockRelease,
    Program,
)

from tests.conftest import compute_only_program, lock_step_program


class TestLockProfiles:
    def test_counts_and_ordering(self, machine4):
        def body(tid):
            for k in range(20):
                # lock 0 heavily contended, lock 1 rarely used
                yield LockAcquire(0)
                yield Compute(400)
                yield LockRelease(0)
                if tid == 0 and k % 10 == 0:
                    yield LockAcquire(1)
                    yield Compute(10)
                    yield LockRelease(1)

        result = simulate(machine4, Program("p", [body(t) for t in range(4)]))
        profiles = lock_profiles(result)
        assert profiles[0].lock_id == 0  # most waited-on first
        assert profiles[0].n_acquires == 80
        assert profiles[0].total_wait_cycles > 0
        by_id = {p.lock_id: p for p in profiles}
        assert by_id[1].n_contended == 0
        assert by_id[1].total_wait_cycles == 0

    def test_contention_rate_bounds(self, machine4):
        result = simulate(machine4, lock_step_program(4, iters=30))
        for profile in lock_profiles(result):
            assert 0.0 <= profile.contention_rate <= 1.0
            assert 0.0 <= profile.utilization <= 1.0

    def test_hold_time_positive(self, machine4):
        result = simulate(machine4, lock_step_program(4, iters=10))
        profile = lock_profiles(result)[0]
        assert profile.mean_hold_cycles > 0
        # CS body is 80 instrs (~20 cycles) plus a store
        assert profile.mean_hold_cycles < 500

    def test_uncontended_single_thread(self, machine1):
        result = simulate(machine1, lock_step_program(1, iters=10))
        profile = lock_profiles(result)[0]
        assert profile.n_contended == 0
        assert profile.total_wait_cycles == 0
        assert profile.mean_wait_cycles == 0.0

    def test_wait_dominates_for_serial_program(self, machine4):
        """A fully serialized program spends most cycles waiting."""
        def body(tid):
            for __ in range(15):
                yield LockAcquire(0)
                yield Compute(2000)
                yield LockRelease(0)

        result = simulate(machine4, Program("s", [body(t) for t in range(4)]))
        profile = lock_profiles(result)[0]
        assert profile.utilization > 0.6
        assert profile.total_wait_cycles > result.total_cycles


class TestBarrierProfiles:
    def test_episode_counts(self, machine4):
        def body(tid):
            for phase in range(3):
                yield Compute(100)
                yield BarrierWait(0)

        result = simulate(machine4, Program("b", [body(t) for t in range(4)]))
        profiles = barrier_profiles(result)
        assert profiles[0].n_episodes == 3
        assert profiles[0].n_parties == 4

    def test_no_sync(self, machine4):
        result = simulate(machine4, compute_only_program(4))
        assert lock_profiles(result) == []
        assert barrier_profiles(result) == []


class TestRendering:
    def test_report(self, machine4):
        result = simulate(machine4, lock_step_program(4, iters=10))
        text = render_sync_profile(result)
        assert "acquires" in text
        assert "barrier" in text

    def test_report_without_sync(self, machine4):
        result = simulate(machine4, compute_only_program(4))
        assert "(no locks)" in render_sync_profile(result)
