"""Synchronization state objects: locks, barriers, address allocation."""

from __future__ import annotations

import pytest

from repro.osmodel.thread import SoftwareThread
from repro.sync.primitives import (
    BarrierState,
    LockState,
    SYNC_REGION_BASE,
    SyncManager,
    PC_LOCK_SPIN_LOAD,
    PC_LOCK_TEST,
)


def thread(tid: int) -> SoftwareThread:
    return SoftwareThread(tid, iter(()))


class TestLockState:
    def test_free_initially(self):
        lock = LockState(0, 0x1000)
        assert lock.is_free
        assert not lock.fifo_handoff

    def test_holder_tracking(self):
        lock = LockState(0, 0x1000)
        owner = thread(1)
        lock.holder = owner
        assert not lock.is_free


class TestBarrierState:
    def test_last_arrival_releases(self):
        barrier = BarrierState(0, 0x100, 0x140, n_parties=3)
        assert not barrier.arrive()
        assert not barrier.arrive()
        assert barrier.arrive()
        assert barrier.generation == 1
        assert barrier.arrived == 0

    def test_single_party_always_releases(self):
        barrier = BarrierState(0, 0x100, 0x140, n_parties=1)
        assert barrier.arrive()
        assert barrier.arrive()
        assert barrier.generation == 2

    def test_zero_parties_rejected(self):
        with pytest.raises(ValueError):
            BarrierState(0, 0x100, 0x140, n_parties=0)


class TestSyncManager:
    def test_lazy_creation_and_identity(self):
        manager = SyncManager(4)
        lock = manager.lock(3)
        assert manager.lock(3) is lock
        barrier = manager.barrier(0)
        assert manager.barrier(0) is barrier
        assert barrier.n_parties == 4

    def test_distinct_cache_lines(self):
        manager = SyncManager(2)
        addrs = [
            manager.lock(0).addr,
            manager.lock(1).addr,
            manager.barrier(0).count_addr,
            manager.barrier(0).gen_addr,
        ]
        lines = {a // 64 for a in addrs}
        assert len(lines) == len(addrs)

    def test_addresses_in_reserved_region(self):
        manager = SyncManager(2)
        assert manager.lock(0).addr >= SYNC_REGION_BASE

    def test_fifo_policy_propagates(self):
        manager = SyncManager(2, lock_fifo_handoff=True)
        assert manager.lock(0).fifo_handoff


class TestSyntheticPcs:
    def test_acquire_test_load_shares_spin_pc(self):
        """Test-and-test-and-set: the acquire's test load IS the spin
        loop load, so the Tian detector sees one continuous stream."""
        assert PC_LOCK_TEST == PC_LOCK_SPIN_LOAD
