"""Golden speedup-stack regression tests.

Each fixture under ``tests/golden/fixtures/`` pins the *complete*
observable output of one (benchmark, thread-count) experiment cell —
every Eq. 4 stack component, both speedup numbers, the Eq. 6 estimation
error, and the raw cycle counts.  The simulator is integer-cycle
deterministic, so the comparison is exact: any engine, cache, accounting
or workload change that shifts a single component by any amount fails
here with a component-level diff.

After an *intended* behaviour change, regenerate with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import MachineConfig
from repro.experiments.runner import run_experiment
from repro.workloads.spec import build_program
from repro.workloads.suite import by_name

FIXTURES = Path(__file__).parent / "fixtures"

#: the pinned cells: three scaling personalities (synchronization-bound,
#: imbalance-heavy, embarrassingly parallel) at a scaling-friendly and a
#: scaling-hostile thread count
GOLDEN_CELLS = [
    ("cholesky", 2),
    ("cholesky", 16),
    ("facesim_small", 2),
    ("facesim_small", 16),
    ("blackscholes_small", 2),
    ("blackscholes_small", 16),
]
SCALE = 0.2
MAX_CYCLES = 20_000_000


def _fixture_path(name: str, n_threads: int) -> Path:
    return FIXTURES / f"{name}_n{n_threads}.json"


def stack_to_dict(stack) -> dict:
    """Flatten a SpeedupStack into the golden-fixture schema."""
    return {
        "name": stack.name,
        "n_threads": stack.n_threads,
        "tp_cycles": stack.tp_cycles,
        "ts_cycles": stack.ts_cycles,
        "truncated": stack.truncated,
        "components": dict(stack.segments()),
        "actual_speedup": stack.actual_speedup,
        "estimated_speedup": stack.estimated_speedup,
        "estimation_error": stack.estimation_error,
    }


def diff_stacks(expected: dict, actual: dict) -> list[str]:
    """Component-level diff, one line per divergent field."""
    lines = []
    keys = sorted(set(expected) | set(actual))
    for key in keys:
        exp, act = expected.get(key), actual.get(key)
        if key == "components":
            comp_keys = sorted(set(exp or {}) | set(act or {}))
            for comp in comp_keys:
                e, a = (exp or {}).get(comp), (act or {}).get(comp)
                if e != a:
                    delta = (
                        f" (delta {a - e:+.6g})"
                        if isinstance(e, (int, float))
                        and isinstance(a, (int, float)) else ""
                    )
                    lines.append(
                        f"components.{comp}: expected {e!r}, got {a!r}{delta}"
                    )
        elif exp != act:
            lines.append(f"{key}: expected {exp!r}, got {act!r}")
    return lines


def _run_cell(name: str, n_threads: int):
    spec = by_name(name)
    machine = MachineConfig(n_cores=n_threads)
    return run_experiment(
        spec.full_name, machine,
        build_program(spec, n_threads, scale=SCALE),
        build_program(spec, 1, scale=SCALE),
        max_cycles=MAX_CYCLES,
        on_timeout="truncate",
    )


@pytest.mark.parametrize(
    "name,n_threads", GOLDEN_CELLS,
    ids=[f"{n}:{t}" for n, t in GOLDEN_CELLS],
)
def test_golden_stack(name, n_threads, request):
    result = _run_cell(name, n_threads)
    actual = stack_to_dict(result.stack)
    path = _fixture_path(name, n_threads)
    if request.config.getoption("--update-golden"):
        FIXTURES.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=1) + "\n")
        pytest.skip(f"golden fixture rewritten: {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; generate with --update-golden"
    )
    expected = json.loads(path.read_text())
    diff = diff_stacks(expected, actual)
    assert not diff, (
        f"{name}:{n_threads} diverged from golden fixture "
        f"{path.name}:\n  " + "\n  ".join(diff)
    )


def test_golden_fixtures_are_consistent():
    """Every checked-in fixture must itself satisfy the Eq. 4 identity:
    components sum to N (validate_consistency's invariant)."""
    paths = sorted(FIXTURES.glob("*.json"))
    assert paths, "no golden fixtures checked in"
    for path in paths:
        doc = json.loads(path.read_text())
        total = sum(doc["components"].values())
        assert total == pytest.approx(doc["n_threads"], abs=1e-6), path.name


def test_diff_comparator_reports_component_deltas():
    base = {"n_threads": 2, "components": {"base": 1.5, "spinning": 0.5}}
    moved = {"n_threads": 2, "components": {"base": 1.25, "spinning": 0.75}}
    diff = diff_stacks(base, moved)
    assert len(diff) == 2
    assert any("components.base" in line and "-0.25" in line for line in diff)
    assert diff_stacks(base, base) == []
